//! Trace analysis: reuse distances and miss-rate-vs-capacity curves.
//!
//! The paper's miss-rate figures show *what* each granularity does; this
//! module computes *why*: the trace's *byte reuse-distance* profile — for
//! each access, how many distinct superblock bytes were touched since the
//! previous access to the same superblock. By the Mattson stack property,
//! an access whose reuse distance exceeds the capacity can never hit
//! under LRU — an *exact* miss-rate floor for the recency baseline — and
//! because FIFO retention is driven by intervening insertions (which the
//! reuse distance upper-bounds), the same CDF is a tight heuristic floor
//! for the FIFO-family policies. Its knee locates the capacity cliff each
//! benchmark sits on (the "bimodal" behaviour of §4.2).
//!
//! The exact distances are computed with a Fenwick tree over access
//! timestamps — O(n log n), fine for millions of events.

use cce_core::SuperblockId;
use cce_dbt::{TraceEvent, TraceLog};
use std::collections::HashMap;

/// Fenwick (binary indexed) tree over access positions, weighted by
/// superblock bytes.
#[derive(Debug)]
struct Fenwick {
    tree: Vec<u64>,
}

impl Fenwick {
    fn new(n: usize) -> Fenwick {
        Fenwick {
            tree: vec![0; n + 1],
        }
    }

    fn add(&mut self, mut i: usize, delta: i64) {
        i += 1;
        while i < self.tree.len() {
            self.tree[i] = (self.tree[i] as i64 + delta) as u64;
            i += i & i.wrapping_neg();
        }
    }

    /// Sum of weights at positions `0..=i`.
    fn prefix(&self, mut i: usize) -> u64 {
        i += 1;
        let mut s = 0;
        while i > 0 {
            s += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        s
    }
}

/// The reuse-distance profile of a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct ReuseProfile {
    /// Sorted byte reuse distances of all non-cold accesses.
    distances: Vec<u64>,
    /// Number of cold (first-touch) accesses.
    pub cold_accesses: u64,
    /// Total accesses.
    pub total_accesses: u64,
}

impl ReuseProfile {
    /// Fraction of all accesses whose reuse distance is at most
    /// `capacity` bytes — an exact upper bound on LRU's hit rate at that
    /// capacity, and a heuristic one for FIFO-family policies (cold
    /// accesses can never hit under anything).
    #[must_use]
    pub fn hit_rate_bound(&self, capacity: u64) -> f64 {
        if self.total_accesses == 0 {
            return 0.0;
        }
        let fitting = self.distances.partition_point(|&d| d <= capacity);
        fitting as f64 / self.total_accesses as f64
    }

    /// The corresponding lower bound on the miss rate.
    #[must_use]
    pub fn miss_rate_bound(&self, capacity: u64) -> f64 {
        1.0 - self.hit_rate_bound(capacity)
    }

    /// Quantile of the non-cold reuse distances (`q` in 0..=1).
    ///
    /// Returns `None` when every access is cold.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `0.0..=1.0`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<u64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in 0..=1");
        if self.distances.is_empty() {
            return None;
        }
        let idx = ((self.distances.len() - 1) as f64 * q).round() as usize;
        Some(self.distances[idx])
    }

    /// The miss-rate lower bound evaluated at `maxCache / pressure` for
    /// each pressure — the analytic floor under Figure 7's curves.
    #[must_use]
    pub fn pressure_floor(&self, max_cache: u64, pressures: &[u32]) -> Vec<(u32, f64)> {
        pressures
            .iter()
            .map(|&p| (p, self.miss_rate_bound(max_cache / u64::from(p.max(1)))))
            .collect()
    }
}

/// Computes the byte reuse-distance profile of `trace`.
#[must_use]
pub fn reuse_profile(trace: &TraceLog) -> ReuseProfile {
    let sizes: HashMap<SuperblockId, u64> = trace
        .superblocks
        .iter()
        .map(|s| (s.id, u64::from(s.size)))
        .collect();
    let n = trace.events.len();
    let mut fen = Fenwick::new(n);
    let mut last_pos: HashMap<SuperblockId, usize> = HashMap::new();
    let mut distances = Vec::with_capacity(n);
    let mut cold = 0u64;

    for (pos, ev) in trace.events.iter().enumerate() {
        let TraceEvent::Access { id, .. } = *ev;
        let size = sizes.get(&id).copied().unwrap_or(0);
        match last_pos.get(&id) {
            None => cold += 1,
            Some(&prev) => {
                // Distinct bytes touched strictly between prev and pos:
                // prefix sums over live "latest occurrence" markers.
                let between = fen.prefix(pos.saturating_sub(1)) - fen.prefix(prev);
                distances.push(between);
                // The block's marker moves from prev to pos.
                fen.add(prev, -(size as i64));
            }
        }
        fen.add(pos, size as i64);
        last_pos.insert(id, pos);
    }
    distances.sort_unstable();
    ReuseProfile {
        distances,
        cold_accesses: cold,
        total_accesses: n as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cce_dbt::SuperblockInfo;
    use cce_tinyvm::program::Pc;

    fn sb(n: u64) -> SuperblockId {
        SuperblockId(n)
    }

    fn make_trace(sizes: &[u32], accesses: &[u64]) -> TraceLog {
        let mut log = TraceLog::new("t");
        for (i, &s) in sizes.iter().enumerate() {
            log.record_superblock(SuperblockInfo {
                id: sb(i as u64),
                head_pc: Pc(i as u64 * 100),
                size: s,
                guest_blocks: 1,
                exits: 1,
            });
        }
        for &a in accesses {
            log.record_access(sb(a), None);
        }
        log
    }

    #[test]
    fn immediate_reuse_has_distance_zero() {
        let t = make_trace(&[100, 100], &[0, 0, 0]);
        let p = reuse_profile(&t);
        assert_eq!(p.cold_accesses, 1);
        assert_eq!(p.distances, vec![0, 0]);
        assert_eq!(p.hit_rate_bound(0), 2.0 / 3.0);
    }

    #[test]
    fn interleaved_reuse_counts_distinct_bytes() {
        // A B A: the re-access of A has distance = size(B) = 70.
        let t = make_trace(&[100, 70], &[0, 1, 0]);
        let p = reuse_profile(&t);
        assert_eq!(p.distances, vec![70]);
        assert_eq!(p.miss_rate_bound(69), 1.0);
        assert!((p.miss_rate_bound(70) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn repeated_intervening_block_counts_once() {
        // A B B B A: distance for the second A is still 70 (distinct).
        let t = make_trace(&[100, 70], &[0, 1, 1, 1, 0]);
        let p = reuse_profile(&t);
        // B's re-accesses have distance 0; A's is 70.
        assert_eq!(p.distances, vec![0, 0, 70]);
    }

    #[test]
    fn cyclic_scan_distances_equal_working_set() {
        // 0 1 2 0 1 2: every reuse distance is the other two blocks.
        let t = make_trace(&[50, 50, 50], &[0, 1, 2, 0, 1, 2]);
        let p = reuse_profile(&t);
        assert_eq!(p.distances, vec![100, 100, 100]);
        // A 99-byte cache can never hit; a 100-byte one could.
        assert_eq!(p.hit_rate_bound(99), 0.0);
        assert_eq!(p.hit_rate_bound(100), 0.5);
    }

    #[test]
    fn quantiles_and_pressure_floor() {
        let t = make_trace(&[50, 50, 50], &[0, 1, 2, 0, 1, 2]);
        let p = reuse_profile(&t);
        assert_eq!(p.quantile(0.5), Some(100));
        let floor = p.pressure_floor(300, &[2, 3, 4]);
        // 300/2=150 ≥ 100 ⇒ misses only the 3 cold accesses.
        assert!((floor[0].1 - 0.5).abs() < 1e-12);
        // 300/4=75 < 100 ⇒ nothing can hit.
        assert!((floor[2].1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bound_is_exact_for_lru_and_holds_for_fifo_here() {
        // Mattson: the bound provably floors LRU's misses. For the
        // FIFO-family it is heuristic; on these deterministic traces it
        // holds as well (checked, not assumed).
        use crate::pressure::{capacity_for_pressure, simulate_at_pressure};
        use crate::replay::Replay;
        use crate::simulator::SimConfig;
        use cce_core::{CodeCache, Granularity, LruCache};
        let trace = cce_workloads::by_name("gzip").unwrap().trace(0.2, 4);
        let profile = reuse_profile(&trace);
        for pressure in [2u32, 6] {
            let cap = capacity_for_pressure(trace.max_cache_bytes(), pressure);
            let bound = profile.miss_rate_bound(cap);
            let lru = Replay::new(&trace)
                .session(CodeCache::new(Box::new(LruCache::new(cap).unwrap())), "LRU")
                .run()
                .unwrap()
                .into_solo();
            assert!(
                lru.stats.miss_rate() >= bound - 1e-9,
                "LRU@{pressure}: {} beat the Mattson bound {bound}",
                lru.stats.miss_rate()
            );
            for g in [
                Granularity::Flush,
                Granularity::units(8),
                Granularity::Superblock,
            ] {
                let r = simulate_at_pressure(&trace, g, pressure, &SimConfig::default()).unwrap();
                assert!(
                    r.stats.miss_rate() >= bound - 1e-9,
                    "{g}@{pressure}: policy {} beat the reuse floor {bound}",
                    r.stats.miss_rate()
                );
            }
        }
    }

    #[test]
    fn empty_trace_profile() {
        let t = make_trace(&[], &[]);
        let p = reuse_profile(&t);
        assert_eq!(p.total_accesses, 0);
        assert_eq!(p.hit_rate_bound(1000), 0.0);
        assert_eq!(p.quantile(0.5), None);
    }
}
