//! Multi-tenant concurrent replay over a [`ConcurrentSession`].
//!
//! [`simulate_concurrent`] drives N per-tenant traces through one shared
//! concurrent cache on T worker threads: thread `j` owns tenants `j`,
//! `j+T`, … and round-robins bounded event slices across its tenants, so
//! with several tenants per thread their lock acquisitions interleave
//! the way independent guest programs' would. Each tenant's replay runs
//! the exact [`SimDriver`] core every single-threaded `simulate_*` entry
//! point uses, against that tenant's [`cce_core::TenantSession`] handle.
//!
//! **Determinism:** without an arbiter, every tenant's [`SimResult`] is
//! byte-identical to its solo single-threaded run at the same capacity
//! and shard count, for any thread count — per-tenant lanes make tenant
//! state independent of global interleaving (see DESIGN.md §12; enforced
//! by `tests/concurrent_conformance.rs`). With an arbiter, capacity
//! moves depend on the global access interleaving, so runs are
//! reproducible only at `threads = 1`.

use crate::simulator::{SimConfig, SimDriver, SimError, SimResult};
use cce_core::{
    ArbiterConfig, CacheSession, ConcurrentSession, TenantConfig, TenantId, TenantSession,
};
use cce_dbt::{SharedTrace, TraceEvent};
use std::sync::Arc;

/// Configuration of one concurrent multi-tenant replay.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConcurrentSimConfig {
    /// Per-tenant cache cell: granularity, **per-tenant** capacity, cost
    /// models. Each tenant gets its own full `capacity` bytes, split
    /// over the shards exactly like a solo sharded cache.
    pub sim: SimConfig,
    /// Shards of the shared cache.
    pub shards: u32,
    /// Worker threads serving the tenants.
    pub threads: usize,
    /// Events per round-robin turn within a worker thread.
    pub slice: usize,
    /// Enable Memshare-style capacity arbitration between tenants.
    pub arbiter: Option<ArbiterConfig>,
}

impl Default for ConcurrentSimConfig {
    fn default() -> ConcurrentSimConfig {
        ConcurrentSimConfig {
            sim: SimConfig::default(),
            shards: 4,
            threads: 1,
            slice: 256,
            arbiter: None,
        }
    }
}

/// Replays one trace per tenant through a freshly built
/// [`ConcurrentSession`] (every tenant at `cfg.sim.granularity` and
/// `cfg.sim.capacity`). Returns one [`SimResult`] per tenant, in tenant
/// order.
///
/// # Errors
///
/// Returns [`SimError::EmptyTrace`] when `traces` is empty or any trace
/// has no events, [`SimError::Cache`] for invalid geometry, and the
/// per-tenant replay errors of a solo [`crate::replay::Replay`] run.
pub fn simulate_concurrent(
    traces: &[SharedTrace],
    cfg: &ConcurrentSimConfig,
) -> Result<Vec<SimResult>, SimError> {
    if traces.is_empty() {
        return Err(SimError::EmptyTrace);
    }
    let tenants = traces
        .iter()
        .map(|_| TenantConfig::with_granularity(cfg.sim.granularity, cfg.sim.capacity))
        .collect();
    let session = ConcurrentSession::new(tenants, cfg.shards, cfg.arbiter)?;
    simulate_concurrent_with(&session, traces, cfg)
}

/// [`simulate_concurrent`] over a pre-built session — the entry point
/// for heterogeneous tenants (custom organizations or budgets via
/// [`TenantConfig::new`]). `session.tenant_count()` must equal
/// `traces.len()`; trace `t` drives tenant `t`.
///
/// # Errors
///
/// Same conditions as [`simulate_concurrent`].
pub fn simulate_concurrent_with(
    session: &ConcurrentSession,
    traces: &[SharedTrace],
    cfg: &ConcurrentSimConfig,
) -> Result<Vec<SimResult>, SimError> {
    if traces.is_empty() || session.tenant_count() != traces.len() {
        return Err(SimError::EmptyTrace);
    }
    let mut drivers = Vec::with_capacity(traces.len());
    for (t, trace) in traces.iter().enumerate() {
        let tenant = session.tenant(TenantId(t as u32));
        let label = tenant.granularity().label();
        drivers.push((
            t,
            SimDriver::new(
                &trace.name,
                &trace.superblocks,
                trace.event_count,
                tenant,
                label,
                &cfg.sim,
            )?,
            Cursor::new(&trace.chunks),
        ));
    }
    let threads = cfg.threads.max(1).min(drivers.len());
    let slice = cfg.slice.max(1);
    let mut groups: Vec<Vec<TenantRun<'_>>> = (0..threads).map(|_| Vec::new()).collect();
    for run in drivers {
        groups[run.0 % threads].push(run);
    }
    let mut results: Vec<Option<Result<SimResult, SimError>>> =
        (0..traces.len()).map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = groups
            .into_iter()
            .map(|group| scope.spawn(move || run_group(group, slice)))
            .collect();
        for handle in handles {
            // cce-analyze: allow(panic-path): join fails only when the worker panicked; re-raising is the right propagation
            for (t, result) in handle.join().expect("concurrent replay worker panicked") {
                results[t] = Some(result);
            }
        }
    });
    results
        .into_iter()
        // cce-analyze: allow(panic-path): tenant t goes to group t % threads, so every slot is filled by construction
        .map(|r| r.expect("every tenant was assigned to a worker"))
        .collect()
}

type TenantRun<'a> = (usize, SimDriver<TenantSession>, Cursor<'a>);

/// Round-robins bounded slices across one worker's tenants until every
/// stream is drained, then finishes each driver.
fn run_group(group: Vec<TenantRun<'_>>, slice: usize) -> Vec<(usize, Result<SimResult, SimError>)> {
    let mut done = Vec::with_capacity(group.len());
    let mut live = group;
    while !live.is_empty() {
        let mut still = Vec::with_capacity(live.len());
        for (t, mut driver, mut cursor) in live {
            match cursor.next_slice(slice) {
                Some(events) => match driver.feed(events) {
                    Ok(()) => still.push((t, driver, cursor)),
                    Err(e) => done.push((t, Err(e))),
                },
                None => done.push((t, driver.finish())),
            }
        }
        live = still;
    }
    done
}

/// A read cursor over one tenant's chunked event stream.
struct Cursor<'a> {
    chunks: &'a [Arc<[TraceEvent]>],
    chunk: usize,
    offset: usize,
}

impl<'a> Cursor<'a> {
    fn new(chunks: &'a [Arc<[TraceEvent]>]) -> Cursor<'a> {
        Cursor {
            chunks,
            chunk: 0,
            offset: 0,
        }
    }

    /// The next up-to-`max`-event slice, or `None` when drained. Never
    /// crosses a chunk boundary (slices stay borrowed, no copying).
    fn next_slice(&mut self, max: usize) -> Option<&'a [TraceEvent]> {
        while self.chunk < self.chunks.len() {
            let chunk = &self.chunks[self.chunk];
            if self.offset >= chunk.len() {
                self.chunk += 1;
                self.offset = 0;
                continue;
            }
            let end = (self.offset + max).min(chunk.len());
            let slice = &chunk[self.offset..end];
            self.offset = end;
            return Some(slice);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulator::{simulate_source_session, EventSource};
    use cce_core::{Granularity, ShardedCache};
    use cce_workloads::catalog;

    fn traces(n: usize) -> Vec<SharedTrace> {
        let names = ["gzip", "crafty", "gcc", "perlbmk"];
        (0..n)
            .map(|i| {
                let log = catalog::by_name(names[i % names.len()])
                    .unwrap()
                    .trace(0.02, 1 + i as u64);
                SharedTrace::from_log(&log)
            })
            .collect()
    }

    fn solo(trace: &SharedTrace, cfg: &ConcurrentSimConfig) -> SimResult {
        let cache =
            ShardedCache::with_granularity(cfg.sim.granularity, cfg.sim.capacity, cfg.shards)
                .unwrap();
        simulate_source_session(trace, cache, cfg.sim.granularity.label(), &cfg.sim).unwrap()
    }

    #[test]
    fn each_tenant_matches_its_solo_run_at_any_thread_count() {
        let ts = traces(3);
        for threads in [1usize, 2, 4] {
            let cfg = ConcurrentSimConfig {
                sim: SimConfig {
                    granularity: Granularity::units(4),
                    capacity: 16 * 1024,
                    ..SimConfig::default()
                },
                shards: 2,
                threads,
                slice: 64,
                ..ConcurrentSimConfig::default()
            };
            let results = simulate_concurrent(&ts, &cfg).unwrap();
            assert_eq!(results.len(), 3);
            for (t, trace) in ts.iter().enumerate() {
                assert_eq!(
                    results[t],
                    solo(trace, &cfg),
                    "tenant {t} diverged at {threads} threads"
                );
            }
        }
    }

    #[test]
    fn slicing_does_not_change_results() {
        let ts = traces(2);
        let base = ConcurrentSimConfig {
            sim: SimConfig {
                capacity: 8 * 1024,
                ..SimConfig::default()
            },
            shards: 2,
            slice: 1,
            ..ConcurrentSimConfig::default()
        };
        let fine = simulate_concurrent(&ts, &base).unwrap();
        let coarse = simulate_concurrent(
            &ts,
            &ConcurrentSimConfig {
                slice: 100_000,
                ..base
            },
        )
        .unwrap();
        assert_eq!(fine, coarse, "slice size must be invisible");
    }

    #[test]
    fn arbiter_runs_are_reproducible_single_threaded() {
        let ts = traces(2);
        let cfg = ConcurrentSimConfig {
            sim: SimConfig {
                capacity: 4 * 1024,
                ..SimConfig::default()
            },
            shards: 2,
            threads: 1,
            arbiter: Some(ArbiterConfig {
                review_period: 512,
                ..ArbiterConfig::default()
            }),
            ..ConcurrentSimConfig::default()
        };
        let a = simulate_concurrent(&ts, &cfg).unwrap();
        let b = simulate_concurrent(&ts, &cfg).unwrap();
        assert_eq!(a, b, "single-threaded arbiter replay must be pure");
    }

    #[test]
    fn empty_input_is_an_error() {
        assert_eq!(
            simulate_concurrent(&[], &ConcurrentSimConfig::default()).unwrap_err(),
            SimError::EmptyTrace
        );
    }

    #[test]
    fn shared_trace_event_source_agrees_with_cursor() {
        // The cursor must deliver exactly the events the EventSource
        // iterator would, in order.
        let ts = traces(1);
        let trace = &ts[0];
        let mut cursor = Cursor::new(&trace.chunks);
        let mut from_cursor = Vec::new();
        while let Some(s) = cursor.next_slice(97) {
            from_cursor.extend_from_slice(s);
        }
        let from_source: Vec<TraceEvent> = trace
            .event_chunks()
            .flat_map(<[TraceEvent]>::to_vec)
            .collect();
        assert_eq!(from_cursor, from_source);
    }
}
