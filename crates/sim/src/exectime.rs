//! Execution-time modelling: Table 2 and §5.3.
//!
//! Two estimates are built from counted events:
//!
//! * **Chaining slowdown (Table 2).** With chaining disabled, *every*
//!   superblock entry takes the dispatcher path: guest-state save/restore,
//!   a hash-table lookup, and — the dominant term the paper calls out —
//!   the pair of `mprotect` system calls DynamoRIO issues to protect the
//!   translator from guest code. The run's extra time is then
//!   `entries × dispatch_cost`, and entries per second follow from the
//!   benchmark's instruction rate and its mean guest instructions per
//!   superblock entry.
//! * **Granularity savings (§5.3).** Cache-management overhead
//!   (instructions, from the simulator) is converted to seconds with the
//!   benchmark's CPI and the paper's 2.4 GHz Xeon clock, scaled from
//!   trace accesses to the real run's entry count; the relative execution
//!   time of two policies follows.

/// Clock frequency of the paper's measurement machine (dual Xeon 2.4 GHz).
pub const XEON_CLOCK_GHZ: f64 = 2.4;

/// Converts an instruction count to seconds at the given CPI and clock.
///
/// # Example
///
/// ```
/// use cce_sim::exectime::instructions_to_seconds;
/// // 2.4e9 instructions at CPI 1.0 on a 2.4 GHz machine = 1 second.
/// let s = instructions_to_seconds(2.4e9, 1.0, 2.4);
/// assert!((s - 1.0).abs() < 1e-12);
/// ```
#[must_use]
pub fn instructions_to_seconds(instructions: f64, cpi: f64, clock_ghz: f64) -> f64 {
    instructions * cpi / (clock_ghz * 1e9)
}

/// Per-dispatched-entry cost decomposition, in instructions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DispatchCost {
    /// Hash-table lookup (original PC → cache PC).
    pub hash_lookup: f64,
    /// Guest context save + restore around the translator.
    pub context_switch: f64,
    /// The pair of memory-protection system calls guarding the
    /// translator (the dominant cost per the paper's Table 2 discussion).
    pub mprotect_pair: f64,
}

impl DispatchCost {
    /// DynamoRIO-like costs: cheap lookup, moderate context switch, very
    /// expensive protection changes.
    #[must_use]
    pub fn dynamorio() -> DispatchCost {
        DispatchCost {
            hash_lookup: 45.0,
            context_switch: 230.0,
            mprotect_pair: 5725.0,
        }
    }

    /// A system that does not re-protect its cache on every dispatch
    /// ("In systems where this is not necessary, the slowdown is reduced,
    /// but is still significant" — §5.1).
    #[must_use]
    pub fn no_protection() -> DispatchCost {
        DispatchCost {
            mprotect_pair: 0.0,
            ..DispatchCost::dynamorio()
        }
    }

    /// Total instructions per dispatched entry.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.hash_lookup + self.context_switch + self.mprotect_pair
    }
}

/// The per-benchmark inputs of the Table 2 model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChainingScenario {
    /// Measured runtime with chaining enabled, seconds.
    pub base_seconds: f64,
    /// Mean guest instructions executed per superblock entry.
    pub instrs_per_entry: f64,
}

impl ChainingScenario {
    /// Predicted runtime with chaining disabled: every entry pays the
    /// dispatcher, so the run slows by `dispatch / instrs_per_entry`.
    ///
    /// # Panics
    ///
    /// Panics if `instrs_per_entry <= 0`.
    #[must_use]
    pub fn disabled_seconds(&self, dispatch: &DispatchCost) -> f64 {
        assert!(
            self.instrs_per_entry > 0.0,
            "instrs_per_entry must be positive"
        );
        self.base_seconds * (1.0 + dispatch.total() / self.instrs_per_entry)
    }

    /// Predicted slowdown percentage, the paper's Table 2 metric:
    /// `(disabled − enabled) / enabled × 100`.
    #[must_use]
    pub fn slowdown_percent(&self, dispatch: &DispatchCost) -> f64 {
        (self.disabled_seconds(dispatch) - self.base_seconds) / self.base_seconds * 100.0
    }
}

/// Estimated superblock entries in the benchmark's *real* run: total
/// instructions divided by instructions per entry.
#[must_use]
pub fn real_entries(base_seconds: f64, cpi: f64, clock_ghz: f64, instrs_per_entry: f64) -> f64 {
    let total_instr = base_seconds * clock_ghz * 1e9 / cpi;
    total_instr / instrs_per_entry
}

/// Scales a simulated per-access overhead to real-run seconds: the
/// simulator charges `overhead_per_access` instructions per cache access,
/// the real run performs `entries` accesses.
#[must_use]
pub fn scaled_overhead_seconds(
    overhead_per_access: f64,
    entries: f64,
    cpi: f64,
    clock_ghz: f64,
) -> f64 {
    instructions_to_seconds(overhead_per_access * entries, cpi, clock_ghz)
}

/// §5.3's metric: percent reduction in overall execution time from
/// switching policies, where each policy's time is application time plus
/// its management overhead.
///
/// Returns a negative value when the new policy is *worse*.
#[must_use]
pub fn exec_time_reduction_percent(
    app_seconds: f64,
    overhead_seconds_old: f64,
    overhead_seconds_new: f64,
) -> f64 {
    let t_old = app_seconds + overhead_seconds_old;
    let t_new = app_seconds + overhead_seconds_new;
    (t_old - t_new) / t_old * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatch_total_sums_components() {
        let d = DispatchCost::dynamorio();
        assert!((d.total() - 6000.0).abs() < 1e-9);
        assert!(DispatchCost::no_protection().total() < d.total());
    }

    #[test]
    fn gzip_like_slowdown_is_order_30x() {
        // gzip: tight loops, ~180 guest instructions per superblock
        // entry → Table 2 reports 3357%.
        let s = ChainingScenario {
            base_seconds: 230.0,
            instrs_per_entry: 180.0,
        };
        let pct = s.slowdown_percent(&DispatchCost::dynamorio());
        assert!((2500.0..4500.0).contains(&pct), "slowdown {pct}%");
    }

    #[test]
    fn mcf_like_slowdown_is_much_smaller() {
        // mcf: memory bound, long runs per entry → Table 2 reports 447%.
        let s = ChainingScenario {
            base_seconds: 368.0,
            instrs_per_entry: 1300.0,
        };
        let pct = s.slowdown_percent(&DispatchCost::dynamorio());
        assert!((300.0..700.0).contains(&pct), "slowdown {pct}%");
    }

    #[test]
    fn protection_free_system_still_slows_significantly() {
        let s = ChainingScenario {
            base_seconds: 100.0,
            instrs_per_entry: 200.0,
        };
        let with = s.slowdown_percent(&DispatchCost::dynamorio());
        let without = s.slowdown_percent(&DispatchCost::no_protection());
        assert!(without < with);
        assert!(without > 50.0, "still significant: {without}%");
    }

    #[test]
    fn reduction_percent_signs() {
        // 10s app, 3s old overhead, 1s new ⇒ (13-11)/13 ≈ 15.4%.
        let r = exec_time_reduction_percent(10.0, 3.0, 1.0);
        assert!((r - 2.0 / 13.0 * 100.0).abs() < 1e-9);
        assert!(exec_time_reduction_percent(10.0, 1.0, 3.0) < 0.0);
    }

    #[test]
    fn real_entries_scales_with_runtime() {
        let e1 = real_entries(100.0, 1.0, 2.4, 300.0);
        let e2 = real_entries(200.0, 1.0, 2.4, 300.0);
        assert!((e2 / e1 - 2.0).abs() < 1e-9);
        assert!(e1 > 0.0);
    }

    #[test]
    fn scaled_overhead_roundtrip() {
        // 100 instr/access × 1e9 accesses at CPI 1, 2.4 GHz.
        let s = scaled_overhead_seconds(100.0, 1e9, 1.0, 2.4);
        assert!((s - 100.0e9 / 2.4e9).abs() < 1e-6);
    }
}
