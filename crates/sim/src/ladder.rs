//! Single-pass configuration-ladder engine (DESIGN.md §14).
//!
//! The paper's figures are grid sweeps — granularity × capacity ×
//! pressure — and the naive engine replays the full trace once per
//! cell: O(cells × events). This module simulates *every* cell of a
//! granularity/capacity ladder from **one** traversal of the event
//! stream. The key structural facts that make the fusion exact:
//!
//! * Both FIFO organizations ([`cce_core::UnitFifo`],
//!   [`cce_core::FineFifo`]) are deterministic functions of the access
//!   stream alone — no clocks, no randomness — so per-configuration
//!   state can be advanced in lockstep off shared per-superblock data.
//! * A miss triggers at most **one** eviction invocation in either
//!   organization (one round-robin unit flush, or one batched FIFO
//!   pop-run), so per-insert work per configuration is O(victims).
//! * Residency, first-touch ("seen") and link liveness are per-
//!   configuration *bits*; packing 64 configurations into `u64` masks
//!   turns hit classification and link bookkeeping into mask ops that
//!   touch only the configurations that actually miss.
//!
//! Results are **byte-identical** to the per-cell oracle — same
//! [`CacheStats`], same f64 overhead accumulation order, same settled
//! event stream per cell (checked by `tests/ladder_conformance.rs`).
//! The naive path stays available as [`Engine::Naive`] and remains the
//! reference implementation.

use crate::overhead::OverheadModel;
use crate::simulator::{EventSource, SimConfig, SimError, SimResult};
use cce_core::{CacheError, CacheEvent, CacheStats, Granularity, SuperblockId};
use cce_dbt::TraceEvent;
use std::collections::{HashMap, VecDeque};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative mixer for the id → dense-index map. The lookup sits
/// on the per-event hot path, keys are trusted in-process superblock
/// ids, and iteration order is never observed — so SipHash's DoS
/// hardening buys nothing and its latency is pure overhead.
#[derive(Default)]
struct IdHasher(u64);

impl Hasher for IdHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x0100_0000_01b3);
        }
    }
    fn write_u64(&mut self, n: u64) {
        self.0 = (self.0 ^ n).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        self.0 ^= self.0 >> 32;
    }
}

type IdMap<V> = HashMap<SuperblockId, V, BuildHasherDefault<IdHasher>>;

/// Which simulation engine a [`crate::ReplayMatrix`] runs its grid on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// One full trace replay per grid cell. The oracle: every other
    /// engine must reproduce its output byte-for-byte.
    #[default]
    Naive,
    /// The single-pass configuration ladder in this module: all cells
    /// of a trace simulated from one traversal of its event stream.
    Ladder,
}

/// One rung of the ladder: a granularity at an exact capacity.
///
/// For `Units(n)` granularities the capacity must be divisible by `n`
/// (the truncation the naive [`cce_core::UnitFifo`] constructor applies
/// silently is rejected here as a [`SimError::Config`], so the caller
/// states the effective capacity explicitly).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LadderCell {
    /// Eviction granularity for this rung.
    pub granularity: Granularity,
    /// Exact cache capacity in bytes for this rung.
    pub capacity: u64,
}

/// Receives the per-cell settled event stream from a ladder run, in
/// exactly the order the naive engine's [`cce_core::CodeCache`]
/// observer would see it for that cell.
///
/// `ACTIVE` lets the no-observer fast path compile the emission loops
/// out entirely (hit events in particular are otherwise free).
pub trait LadderObserver {
    /// `false` only for [`NoObserver`]: emission sites are skipped at
    /// compile time when the observer cannot consume them.
    const ACTIVE: bool = true;
    /// One settled event for ladder cell `cell` (index into the
    /// `cells` slice passed to [`simulate_ladder_observed`]).
    fn on_event(&mut self, cell: usize, event: CacheEvent);
}

/// Zero-cost observer for the plain [`simulate_ladder_source`] path.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoObserver;

impl LadderObserver for NoObserver {
    const ACTIVE: bool = false;
    fn on_event(&mut self, _cell: usize, _event: CacheEvent) {}
}

impl<F: FnMut(usize, CacheEvent)> LadderObserver for F {
    fn on_event(&mut self, cell: usize, event: CacheEvent) {
        self(cell, event)
    }
}

/// Configurations simulated per pass: residency/seen/link-liveness are
/// one bit per configuration in a `u64`. Larger ladders run in batches
/// of 64, re-traversing the source once per batch.
const MAX_LADDER_BATCH: usize = 64;

/// Simulate every `cells` rung in a single pass over `source` (one
/// pass per 64-cell batch). `base` supplies the overhead model and the
/// `chaining`/`charge_unlinks` switches; granularity and capacity come
/// from each rung.
///
/// Returns one [`SimResult`] per rung, in `cells` order, byte-identical
/// to what the naive engine produces for the same configuration.
///
/// # Errors
///
/// [`SimError::Config`] for an empty ladder or a `Units(n)` rung whose
/// capacity is not divisible by `n`; [`SimError::Cache`] for rung
/// geometry the organizations themselves reject (zero capacity, more
/// units than bytes); [`SimError::EmptyTrace`],
/// [`SimError::UnknownSuperblock`] and [`SimError::Ingest`] exactly as
/// the naive engine reports them.
pub fn simulate_ladder_source<T: EventSource + ?Sized>(
    source: &T,
    cells: &[LadderCell],
    base: &SimConfig,
) -> Result<Vec<SimResult>, SimError> {
    simulate_ladder_observed(source, cells, base, &mut NoObserver)
}

/// [`simulate_ladder_source`] with a per-cell event observer. The
/// stream delivered for each cell is byte-identical to the settled
/// stream the naive engine's cache observer sees for that cell.
///
/// # Errors
///
/// As [`simulate_ladder_source`].
pub fn simulate_ladder_observed<T, O>(
    source: &T,
    cells: &[LadderCell],
    base: &SimConfig,
    observer: &mut O,
) -> Result<Vec<SimResult>, SimError>
where
    T: EventSource + ?Sized,
    O: LadderObserver,
{
    if cells.is_empty() {
        return Err(SimError::Config("ladder needs at least one configuration"));
    }
    for cell in cells {
        if cell.capacity == 0 {
            return Err(SimError::Cache(CacheError::ZeroCapacity));
        }
        if let Some(n) = cell.granularity.unit_count() {
            let n = u64::from(n);
            if n > cell.capacity {
                return Err(SimError::Cache(CacheError::TooManyUnits {
                    units: u32::try_from(n).unwrap_or(u32::MAX),
                    capacity: cell.capacity,
                }));
            }
            if cell.capacity % n != 0 {
                return Err(SimError::Config(
                    "ladder capacity must be divisible by the granularity's unit count",
                ));
            }
        }
    }
    if source.event_count() == 0 {
        return Err(SimError::EmptyTrace);
    }
    let mut results = Vec::with_capacity(cells.len());
    for (batch_idx, batch) in cells.chunks(MAX_LADDER_BATCH).enumerate() {
        let cell_base = batch_idx * MAX_LADDER_BATCH;
        results.extend(run_batch(source, batch, base, observer, cell_base)?);
    }
    Ok(results)
}

/// A directed chaining edge in the shared link table. `live` holds one
/// bit per configuration in the current batch: the pair is a live link
/// in that configuration's cache.
struct Pair {
    from: u32,
    to: u32,
    live: u64,
}

/// Per-batch state shared by every configuration: the superblock
/// registry (dense indices), per-superblock residency/first-touch bit
/// masks, and the link table with per-endpoint adjacency.
struct Shared {
    ids: Vec<SuperblockId>,
    sizes: Vec<u32>,
    /// Bit c set: superblock resident in configuration c's cache.
    resident: Vec<u64>,
    /// Bit c set: configuration c has inserted this superblock before
    /// (drives the cold/capacity miss split).
    seen: Vec<u64>,
    pairs: Vec<Pair>,
    /// Pair indices with this superblock as `to` / as `from`.
    in_pairs: Vec<Vec<u32>>,
    out_pairs: Vec<Vec<u32>>,
    /// Generation stamp marking the victims of the eviction invocation
    /// in flight, for the survivor/co-victim unlink split.
    dying_stamp: Vec<u64>,
    stamp: u64,
}

/// One round-robin unit of a `Units(n)` configuration.
#[derive(Default)]
struct LadderUnit {
    blocks: Vec<u32>,
    used: u64,
}

/// Organization-specific state of one ladder rung.
enum OrgState {
    /// Mirror of [`cce_core::UnitFifo`]: `n` equal units filled
    /// round-robin, the next unit flushed whole when the head fills.
    Unit {
        unit_capacity: u64,
        head: usize,
        units: Vec<LadderUnit>,
        /// Unit index each superblock was inserted into (valid while
        /// resident; drives the intra/inter link split).
        unit_of: Vec<u32>,
    },
    /// Mirror of [`cce_core::FineFifo`]: one insertion-order queue,
    /// oldest blocks popped until the newcomer fits.
    Fine {
        queue: VecDeque<u32>,
        /// Victim buffer reused across invocations.
        scratch: Vec<u32>,
    },
}

/// Full state of one ladder rung: its bit lane, geometry, organization
/// and the per-cell accumulators a [`SimResult`] is assembled from.
struct ConfigState {
    bit: u64,
    capacity: u64,
    /// Largest insertable block (unit capacity for `Units`, whole
    /// capacity for fine FIFO) — beyond it the block is uncacheable.
    max_insert: u64,
    used: u64,
    resident_blocks: u64,
    org: OrgState,
    stats: CacheStats,
    miss_overhead: f64,
    eviction_overhead: f64,
    unlink_overhead: f64,
    uncacheable: u64,
    /// Running link counts maintained eagerly so the periodic census
    /// is O(1) per configuration instead of a graph walk.
    live_intra: u64,
    live_inter: u64,
    census_intra: u64,
    census_inter: u64,
    label: String,
}

impl ConfigState {
    fn new(lane: usize, cell: &LadderCell, blocks: usize) -> ConfigState {
        let (org, max_insert) = match cell.granularity.unit_count() {
            Some(n) => {
                let unit_capacity = cell.capacity / u64::from(n);
                (
                    OrgState::Unit {
                        unit_capacity,
                        head: 0,
                        units: (0..n).map(|_| LadderUnit::default()).collect(),
                        unit_of: vec![0; blocks],
                    },
                    unit_capacity,
                )
            }
            None => (
                OrgState::Fine {
                    queue: VecDeque::new(),
                    scratch: Vec::new(),
                },
                cell.capacity,
            ),
        };
        ConfigState {
            bit: 1u64 << lane,
            capacity: cell.capacity,
            max_insert,
            used: 0,
            resident_blocks: 0,
            org,
            stats: CacheStats::new(),
            miss_overhead: 0.0,
            eviction_overhead: 0.0,
            unlink_overhead: 0.0,
            uncacheable: 0,
            live_intra: 0,
            live_inter: 0,
            census_intra: 0,
            census_inter: 0,
            label: cell.granularity.label(),
        }
    }

    fn unit_of_slice(&self) -> Option<&[u32]> {
        match &self.org {
            OrgState::Unit { unit_of, .. } => Some(unit_of),
            OrgState::Fine { .. } => None,
        }
    }
}

/// Same unit-locality split [`cce_core::CodeCache`] applies: self-links
/// are intra, fine FIFO puts every block in its own unit, unit FIFO
/// compares unit indices.
fn pair_is_intra(from: u32, to: u32, unit_of: Option<&[u32]>) -> bool {
    from == to || unit_of.is_some_and(|u| u[from as usize] == u[to as usize])
}

fn run_batch<T, O>(
    source: &T,
    cells: &[LadderCell],
    base: &SimConfig,
    obs: &mut O,
    cell_base: usize,
) -> Result<Vec<SimResult>, SimError>
where
    T: EventSource + ?Sized,
    O: LadderObserver,
{
    let registry = source.registry();
    let event_count = source.event_count();
    let blocks = registry.len();
    // Dense indices; on duplicate ids the later entry wins, matching
    // the naive engine's size-map insertion.
    let mut id_to_idx: IdMap<u32> = IdMap::with_capacity_and_hasher(blocks, Default::default());
    let mut ids = Vec::with_capacity(blocks);
    let mut sizes = Vec::with_capacity(blocks);
    for info in registry {
        id_to_idx.insert(info.id, u32::try_from(ids.len()).unwrap_or(u32::MAX));
        ids.push(info.id);
        sizes.push(info.size);
    }
    let mut sh = Shared {
        ids,
        sizes,
        resident: vec![0; blocks],
        seen: vec![0; blocks],
        pairs: Vec::new(),
        in_pairs: vec![Vec::new(); blocks],
        out_pairs: vec![Vec::new(); blocks],
        dying_stamp: vec![0; blocks],
        stamp: 0,
    };
    let mut configs: Vec<ConfigState> = cells
        .iter()
        .enumerate()
        .map(|(lane, cell)| ConfigState::new(lane, cell, blocks))
        .collect();
    let full: u64 = if cells.len() == MAX_LADDER_BATCH {
        u64::MAX
    } else {
        (1u64 << cells.len()) - 1
    };
    let census_every = (usize::try_from(event_count).unwrap_or(usize::MAX) / 64).max(1);
    let model = base.overhead;
    let mut event_idx: u64 = 0;

    for chunk in source.event_chunks() {
        for event in chunk {
            let TraceEvent::Access { id, direct_from } = *event;
            let Some(&block) = id_to_idx.get(&id) else {
                return Err(SimError::UnknownSuperblock(id));
            };
            let b = block as usize;
            let size = sh.sizes[b];
            let res_mask = sh.resident[b];
            if O::ACTIVE {
                let mut hits = res_mask & full;
                while hits != 0 {
                    let lane = hits.trailing_zeros() as usize;
                    hits &= hits - 1;
                    obs.on_event(cell_base + lane, CacheEvent::Hit { id });
                }
            }
            let mut misses = full & !res_mask;
            while misses != 0 {
                let lane = misses.trailing_zeros() as usize;
                misses &= misses - 1;
                let cfg = &mut configs[lane];
                let cold = sh.seen[b] & cfg.bit == 0;
                cfg.stats.misses += 1;
                if cold {
                    cfg.stats.cold_misses += 1;
                } else {
                    cfg.stats.capacity_misses += 1;
                }
                if O::ACTIVE {
                    obs.on_event(cell_base + lane, CacheEvent::Miss { id, cold });
                }
                if size == 0 {
                    return Err(SimError::Cache(CacheError::ZeroSize(id)));
                }
                if u64::from(size) > cfg.max_insert {
                    // Uncacheable in this rung: the miss stands, the
                    // regeneration is charged, nothing is inserted
                    // (and first-touch is not recorded — every future
                    // miss on it stays cold, exactly as in the oracle).
                    cfg.miss_overhead += model.miss_cost(u64::from(size));
                    cfg.uncacheable += 1;
                } else {
                    miss_insert(
                        cfg,
                        &mut sh,
                        b,
                        size,
                        &model,
                        base.charge_unlinks,
                        obs,
                        cell_base + lane,
                    );
                }
            }
            if base.chaining {
                if let Some(from) = direct_from {
                    if let Some(&from_block) = id_to_idx.get(&from) {
                        let both = sh.resident[from_block as usize] & sh.resident[b] & full;
                        if both != 0 {
                            link_configs(&mut sh, &mut configs, from_block, block, both);
                        }
                    }
                }
            }
            let idx = usize::try_from(event_idx).unwrap_or(usize::MAX);
            if idx % census_every == census_every - 1 {
                for cfg in &mut configs {
                    cfg.census_intra += cfg.live_intra;
                    cfg.census_inter += cfg.live_inter;
                }
            }
            event_idx += 1;
        }
    }
    if event_idx != event_count {
        return Err(SimError::Ingest(format!(
            "event stream delivered {event_idx} events but promised {event_count}"
        )));
    }
    let name = source.source_name();
    Ok(configs
        .into_iter()
        .map(|cfg| {
            let mut stats = cfg.stats;
            stats.accesses = event_count;
            // Every access is exactly one hit or one miss.
            stats.hits = event_count - stats.misses;
            SimResult {
                name: name.to_owned(),
                granularity_label: cfg.label,
                capacity: cfg.capacity,
                stats,
                miss_overhead: cfg.miss_overhead,
                eviction_overhead: cfg.eviction_overhead,
                unlink_overhead: cfg.unlink_overhead,
                uncacheable: cfg.uncacheable,
                census_intra_links: cfg.census_intra,
                census_inter_links: cfg.census_inter,
            }
        })
        .collect())
}

/// Insert superblock `b` into one rung after a miss, evicting exactly
/// as that rung's organization would, and charge the three overhead
/// models in the oracle's order (miss, eviction, unlink — the latter
/// two at zero when nothing was evicted, preserving f64 identity).
#[allow(clippy::too_many_arguments)]
fn miss_insert<O: LadderObserver>(
    cfg: &mut ConfigState,
    sh: &mut Shared,
    b: usize,
    size: u32,
    model: &OverheadModel,
    charge_unlinks: bool,
    obs: &mut O,
    cell: usize,
) {
    let ConfigState {
        bit,
        capacity,
        org,
        stats,
        used,
        resident_blocks,
        live_intra,
        live_inter,
        miss_overhead,
        eviction_overhead,
        unlink_overhead,
        ..
    } = cfg;
    let bit = *bit;
    let sz = u64::from(size);
    // (invocations, bytes evicted, unlink operations, links unlinked)
    let mut charge = (0u64, 0u64, 0u64, 0u64);
    match org {
        OrgState::Unit {
            unit_capacity,
            head,
            units,
            unit_of,
        } => {
            if units[*head].used + sz > *unit_capacity {
                let padding = *unit_capacity - units[*head].used;
                if padding > 0 {
                    stats.padding_bytes += padding;
                    if O::ACTIVE {
                        obs.on_event(cell, CacheEvent::Padding { bytes: padding });
                    }
                }
                *head = (*head + 1) % units.len();
                if !units[*head].blocks.is_empty() {
                    let mut victims = std::mem::take(&mut units[*head].blocks);
                    *used -= units[*head].used;
                    units[*head].used = 0;
                    *resident_blocks -= victims.len() as u64;
                    let inv = process_invocation(
                        sh,
                        &victims,
                        bit,
                        Some(unit_of),
                        stats,
                        live_intra,
                        live_inter,
                        obs,
                        cell,
                    );
                    charge = (1, inv.0, inv.1, inv.2);
                    victims.clear();
                    units[*head].blocks = victims;
                }
            }
            let h = *head;
            units[h].blocks.push(b as u32);
            units[h].used += sz;
            unit_of[b] = u32::try_from(h).unwrap_or(u32::MAX);
        }
        OrgState::Fine { queue, scratch } => {
            if *used + sz > *capacity {
                let mut victims = std::mem::take(scratch);
                while *used + sz > *capacity {
                    // The queue cannot run dry while `used > 0`; the
                    // `else` arm keeps this loop panic-free regardless.
                    let Some(victim) = queue.pop_front() else {
                        break;
                    };
                    *used -= u64::from(sh.sizes[victim as usize]);
                    victims.push(victim);
                }
                *resident_blocks -= victims.len() as u64;
                let inv = process_invocation(
                    sh, &victims, bit, None, stats, live_intra, live_inter, obs, cell,
                );
                charge = (1, inv.0, inv.1, inv.2);
                victims.clear();
                *scratch = victims;
            }
            queue.push_back(b as u32);
        }
    }
    *used += sz;
    *resident_blocks += 1;
    sh.resident[b] |= bit;
    sh.seen[b] |= bit;
    stats.insertions += 1;
    stats.bytes_inserted += sz;
    stats.high_water_bytes = stats.high_water_bytes.max(*used);
    stats.high_water_blocks = stats.high_water_blocks.max(*resident_blocks);
    if O::ACTIVE {
        obs.on_event(
            cell,
            CacheEvent::Inserted {
                id: sh.ids[b],
                size,
            },
        );
    }
    *miss_overhead += model.miss_cost(sz);
    *eviction_overhead += model.eviction_cost_total(charge.0, charge.1);
    if charge_unlinks {
        *unlink_overhead += model.unlink_cost_total(charge.2, charge.3);
    }
}

/// Process one eviction invocation for one rung: clear the victims'
/// residency and live-link bits, split removed links into explicit
/// unlink operations (a surviving predecessor must be unlinked) versus
/// links dropped for free (both endpoints dying), and emit the settled
/// event run. Returns (bytes evicted, unlink operations, links
/// unlinked) for the overhead charge.
#[allow(clippy::too_many_arguments)]
fn process_invocation<O: LadderObserver>(
    sh: &mut Shared,
    victims: &[u32],
    bit: u64,
    unit_of: Option<&[u32]>,
    stats: &mut CacheStats,
    live_intra: &mut u64,
    live_inter: &mut u64,
    obs: &mut O,
    cell: usize,
) -> (u64, u64, u64) {
    let Shared {
        ids,
        sizes,
        resident,
        pairs,
        in_pairs,
        out_pairs,
        dying_stamp,
        stamp,
        ..
    } = sh;
    *stamp += 1;
    let now = *stamp;
    let mut bytes = 0u64;
    for &victim in victims {
        dying_stamp[victim as usize] = now;
        bytes += u64::from(sizes[victim as usize]);
    }
    stats.eviction_invocations += 1;
    stats.blocks_evicted += victims.len() as u64;
    stats.bytes_evicted += bytes;
    if O::ACTIVE {
        obs.on_event(cell, CacheEvent::EvictionBegin);
    }
    let mut removed = 0u64;
    let mut unlinked = 0u64;
    let mut unlink_ops = 0u64;
    for &victim in victims {
        let v = victim as usize;
        // Incoming edges from a non-dying source are the ones the
        // oracle charges an explicit unlink for; everything else dies
        // with the invocation for free.
        let mut survivors = 0u32;
        for &p in &in_pairs[v] {
            let pair = &mut pairs[p as usize];
            if pair.live & bit != 0 {
                pair.live &= !bit;
                removed += 1;
                if pair_is_intra(pair.from, pair.to, unit_of) {
                    *live_intra -= 1;
                } else {
                    *live_inter -= 1;
                }
                if dying_stamp[pair.from as usize] != now {
                    survivors += 1;
                }
            }
        }
        for &p in &out_pairs[v] {
            let pair = &mut pairs[p as usize];
            if pair.live & bit != 0 {
                pair.live &= !bit;
                removed += 1;
                if pair_is_intra(pair.from, pair.to, unit_of) {
                    *live_intra -= 1;
                } else {
                    *live_inter -= 1;
                }
            }
        }
        resident[v] &= !bit;
        if O::ACTIVE {
            obs.on_event(
                cell,
                CacheEvent::Evicted {
                    id: ids[v],
                    size: sizes[v],
                },
            );
        }
        if survivors > 0 {
            stats.unlink_operations += 1;
            stats.links_unlinked += u64::from(survivors);
            unlink_ops += 1;
            unlinked += u64::from(survivors);
            if O::ACTIVE {
                obs.on_event(
                    cell,
                    CacheEvent::Unlinked {
                        id: ids[v],
                        links: survivors,
                    },
                );
            }
        }
    }
    let dropped = removed - unlinked;
    stats.links_dropped_free += dropped;
    if O::ACTIVE {
        obs.on_event(
            cell,
            CacheEvent::EvictionEnd {
                bytes,
                links_dropped_free: dropped,
            },
        );
    }
    (bytes, unlink_ops, unlinked)
}

/// Record a chainable transition `from → to` observed while both
/// endpoints are resident in the configurations of `both`: create the
/// link in every such configuration where it is not already live,
/// with the oracle's intra/inter-unit classification.
fn link_configs(sh: &mut Shared, configs: &mut [ConfigState], from: u32, to: u32, both: u64) {
    // A block's successor set is bounded by its exit-stub count, so a
    // linear probe of its out-edges beats a hash lookup on this path.
    let pair_idx = match sh.out_pairs[from as usize]
        .iter()
        .find(|&&p| sh.pairs[p as usize].to == to)
    {
        Some(&p) => p as usize,
        None => {
            let p = u32::try_from(sh.pairs.len()).unwrap_or(u32::MAX);
            sh.pairs.push(Pair { from, to, live: 0 });
            sh.in_pairs[to as usize].push(p);
            sh.out_pairs[from as usize].push(p);
            p as usize
        }
    };
    let mut fresh = both & !sh.pairs[pair_idx].live;
    if fresh == 0 {
        return;
    }
    sh.pairs[pair_idx].live |= fresh;
    while fresh != 0 {
        let lane = fresh.trailing_zeros() as usize;
        fresh &= fresh - 1;
        let cfg = &mut configs[lane];
        let intra = pair_is_intra(from, to, cfg.unit_of_slice());
        cfg.stats.links_created += 1;
        if intra {
            cfg.live_intra += 1;
        } else {
            cfg.stats.inter_unit_links_created += 1;
            cfg.live_inter += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replay::Replay;
    use cce_workloads::catalog;

    fn trace() -> cce_dbt::TraceLog {
        catalog::by_name("gzip").unwrap().trace(0.05, 7)
    }

    /// The per-cell oracle for one rung via the public Replay front
    /// door (capacity pre-truncated so the builders agree exactly).
    fn oracle(trace: &cce_dbt::TraceLog, cell: LadderCell, base: &SimConfig) -> SimResult {
        Replay::new(trace)
            .config(base)
            .granularity(cell.granularity)
            .capacity(cell.capacity)
            .run()
            .unwrap()
            .into_solo()
    }

    fn ladder_cells(max_cache: u64) -> Vec<LadderCell> {
        let mut cells = Vec::new();
        for granularity in [
            Granularity::Flush,
            Granularity::units(2),
            Granularity::units(8),
            Granularity::Superblock,
        ] {
            for pressure in [2u64, 6, 10] {
                let capacity = (max_cache / pressure).max(4096);
                let capacity = match granularity.unit_count() {
                    Some(n) => (capacity / u64::from(n)) * u64::from(n),
                    None => capacity,
                };
                cells.push(LadderCell {
                    granularity,
                    capacity,
                });
            }
        }
        cells
    }

    #[test]
    fn ladder_matches_oracle_cell_by_cell() {
        let trace = trace();
        let base = SimConfig::default();
        let cells = ladder_cells(trace.max_cache_bytes());
        let results = simulate_ladder_source(&trace, &cells, &base).unwrap();
        assert_eq!(results.len(), cells.len());
        for (cell, got) in cells.iter().zip(&results) {
            let want = oracle(&trace, *cell, &base);
            assert_eq!(
                got,
                &want,
                "{} @ {}",
                cell.granularity.label(),
                cell.capacity
            );
        }
    }

    #[test]
    fn ladder_matches_oracle_with_switches_off() {
        let trace = trace();
        let base = SimConfig {
            chaining: false,
            charge_unlinks: false,
            ..SimConfig::default()
        };
        let cells = ladder_cells(trace.max_cache_bytes());
        let results = simulate_ladder_source(&trace, &cells, &base).unwrap();
        for (cell, got) in cells.iter().zip(&results) {
            assert_eq!(got, &oracle(&trace, *cell, &base));
        }
    }

    #[test]
    fn batches_beyond_sixty_four_cells_match_a_single_batch() {
        let trace = catalog::by_name("mcf").unwrap().trace(0.05, 3);
        let base = SimConfig::default();
        // 72 rungs: the 12-cell ladder tiled six times; batch 2 must
        // reproduce batch 1 exactly (each batch re-reads the source).
        let cells: Vec<LadderCell> = (0..6)
            .flat_map(|_| ladder_cells(trace.max_cache_bytes()))
            .collect();
        assert!(cells.len() > MAX_LADDER_BATCH);
        let results = simulate_ladder_source(&trace, &cells, &base).unwrap();
        for (a, b) in results.iter().zip(results.iter().skip(12)) {
            assert_eq!(a, b);
        }
        // Spot-check one rung in each batch against the oracle.
        assert_eq!(results[1], oracle(&trace, cells[1], &base));
        assert_eq!(results[65], oracle(&trace, cells[65], &base));
    }

    #[test]
    fn empty_ladder_is_a_config_error() {
        let trace = trace();
        let err = simulate_ladder_source(&trace, &[], &SimConfig::default()).unwrap_err();
        assert!(matches!(err, SimError::Config(_)), "{err:?}");
    }

    #[test]
    fn indivisible_capacity_is_a_config_error_not_a_panic() {
        let trace = trace();
        let cells = [LadderCell {
            granularity: Granularity::units(3),
            capacity: 1_000_001,
        }];
        let err = simulate_ladder_source(&trace, &cells, &SimConfig::default()).unwrap_err();
        assert!(matches!(err, SimError::Config(_)), "{err:?}");
    }

    #[test]
    fn degenerate_geometry_errors_match_the_organizations() {
        let trace = trace();
        let zero = [LadderCell {
            granularity: Granularity::Flush,
            capacity: 0,
        }];
        assert_eq!(
            simulate_ladder_source(&trace, &zero, &SimConfig::default()).unwrap_err(),
            SimError::Cache(CacheError::ZeroCapacity)
        );
        let crowded = [LadderCell {
            granularity: Granularity::units(64),
            capacity: 32,
        }];
        assert!(matches!(
            simulate_ladder_source(&trace, &crowded, &SimConfig::default()).unwrap_err(),
            SimError::Cache(CacheError::TooManyUnits { .. })
        ));
    }

    #[test]
    fn empty_trace_is_reported_like_the_naive_engine() {
        let empty = cce_dbt::TraceLog::new("empty");
        let cells = [LadderCell {
            granularity: Granularity::Superblock,
            capacity: 4096,
        }];
        assert_eq!(
            simulate_ladder_source(&empty, &cells, &SimConfig::default()).unwrap_err(),
            SimError::EmptyTrace
        );
    }
}
