//! # cce-sim — trace-driven simulation and analytical overhead models
//!
//! This crate is the paper's "combined simulation and analytical study"
//! (§4–§5) in library form:
//!
//! * [`overhead`] — the three measured linear cost models: eviction
//!   (Eq. 2), miss/regeneration (Eq. 3) and unlinking (Eq. 4), with the
//!   paper's constants as the defaults;
//! * [`simulator`] — replays a [`cce_dbt::TraceLog`] against a
//!   [`cce_core::CodeCache`] of any granularity and charges the overhead
//!   models for every miss, eviction invocation and unlink operation;
//!   the chunk-oriented core also ingests streaming binary traces
//!   ([`cce_dbt::TraceReader`]) with I/O overlapped against simulation
//!   and O(chunk) peak memory;
//! * [`concurrent`] — multi-tenant concurrent replay: N per-tenant
//!   traces served by T threads against one shared
//!   [`cce_core::ConcurrentSession`], each tenant's result byte-identical
//!   to its solo run;
//! * [`metrics`] — the weighted unified miss rate (Eq. 1) and
//!   normalization helpers for the relative-overhead figures;
//! * [`regression`] — ordinary least squares, used both to re-derive the
//!   cost models from measurements (Figure 9) and in tests;
//! * [`measurement`] — an instrumented-measurement campaign over our own
//!   DBT's eviction/regeneration/unlink routines, standing in for the
//!   paper's PAPI hardware-counter runs;
//! * [`pressure`] — the `maxCache/n` cache-pressure sweeps behind
//!   Figures 7, 11 and 15;
//! * [`exectime`] — instruction-to-seconds conversion, the dispatch-cost
//!   model behind Table 2's chaining-disabled slowdowns, and §5.3's
//!   execution-time-reduction estimates;
//! * [`analysis`] — reuse-distance profiles and the analytic miss-rate
//!   floor they impose on every FIFO-family policy;
//! * [`seeds`] — multi-seed robustness analysis (confidence intervals);
//! * [`sweep`] — the deterministic threaded sweep runner: shards grid
//!   cells across scoped worker threads into pre-indexed result slots,
//!   so output is byte-identical at any `--jobs` count;
//! * [`report`] — plain-text/CSV tables for the experiment binaries.
//!
//! # Example: one simulator cell
//!
//! ```
//! use cce_core::Granularity;
//! use cce_sim::simulator::{simulate, SimConfig};
//! use cce_workloads::catalog;
//!
//! let trace = catalog::by_name("mcf").unwrap().trace(0.5, 1);
//! let config = SimConfig {
//!     granularity: Granularity::units(8),
//!     capacity: trace.max_cache_bytes() / 2, // cache pressure 2
//!     ..SimConfig::default()
//! };
//! let result = simulate(&trace, &config)?;
//! assert!(result.stats.miss_rate() > 0.0);
//! # Ok::<(), cce_sim::SimError>(())
//! ```

#![deny(unsafe_code)]

pub mod analysis;
pub mod concurrent;
pub mod exectime;
pub mod measurement;
pub mod metrics;
pub mod overhead;
pub mod pressure;
pub mod regression;
pub mod report;
pub mod seeds;
pub mod simulator;
pub mod sweep;

pub use concurrent::{simulate_concurrent, simulate_concurrent_with, ConcurrentSimConfig};
pub use overhead::{LinearModel, OverheadModel};
pub use regression::fit_line;
pub use simulator::{
    simulate, simulate_reader, simulate_source, EventSource, SimConfig, SimDriver, SimError,
    SimResult,
};
pub use sweep::{resolve_jobs, run_matrix, run_sharded, run_shared, SweepCell, SweepPoint};

// `cce-workloads` is a dev-dependency (doc tests and integration tests
// only), so the library proper stays decoupled from the benchmark models.
#[cfg(test)]
use cce_workloads as _;
