//! # cce-sim — trace-driven simulation and analytical overhead models
//!
//! This crate is the paper's "combined simulation and analytical study"
//! (§4–§5) in library form:
//!
//! * [`overhead`] — the three measured linear cost models: eviction
//!   (Eq. 2), miss/regeneration (Eq. 3) and unlinking (Eq. 4), with the
//!   paper's constants as the defaults;
//! * [`simulator`] — replays a [`cce_dbt::TraceLog`] against a
//!   [`cce_core::CodeCache`] of any granularity and charges the overhead
//!   models for every miss, eviction invocation and unlink operation;
//!   the chunk-oriented core also ingests streaming binary traces
//!   ([`cce_dbt::TraceReader`]) with I/O overlapped against simulation
//!   and O(chunk) peak memory;
//! * [`replay`] — the one front door: a [`replay::Replay`] builder that
//!   configures any source (in-memory, shared, streaming), geometry
//!   (granularity/capacity/pressure/shards), session override, or
//!   multi-tenant concurrent run, and a [`replay::ReplayMatrix`] for
//!   full sweep grids;
//! * [`serve`] — the traffic-driven serving benchmark: an open-loop
//!   load generator streams framed trace chunks over a byte transport
//!   into a concurrent-session server loop, reporting throughput,
//!   latency percentiles and shed counts (DESIGN.md §13);
//! * [`concurrent`] — multi-tenant concurrent replay: N per-tenant
//!   traces served by T threads against one shared
//!   [`cce_core::ConcurrentSession`], each tenant's result byte-identical
//!   to its solo run;
//! * [`metrics`] — the weighted unified miss rate (Eq. 1) and
//!   normalization helpers for the relative-overhead figures;
//! * [`regression`] — ordinary least squares, used both to re-derive the
//!   cost models from measurements (Figure 9) and in tests;
//! * [`measurement`] — an instrumented-measurement campaign over our own
//!   DBT's eviction/regeneration/unlink routines, standing in for the
//!   paper's PAPI hardware-counter runs;
//! * [`pressure`] — the `maxCache/n` cache-pressure sweeps behind
//!   Figures 7, 11 and 15;
//! * [`exectime`] — instruction-to-seconds conversion, the dispatch-cost
//!   model behind Table 2's chaining-disabled slowdowns, and §5.3's
//!   execution-time-reduction estimates;
//! * [`analysis`] — reuse-distance profiles and the analytic miss-rate
//!   floor they impose on every FIFO-family policy;
//! * [`seeds`] — multi-seed robustness analysis (confidence intervals);
//! * [`sweep`] — the deterministic threaded sweep runner: shards grid
//!   cells across scoped worker threads into pre-indexed result slots,
//!   so output is byte-identical at any `--jobs` count;
//! * [`report`] — plain-text/CSV tables for the experiment binaries.
//!
//! # Example: one simulator cell
//!
//! ```
//! use cce_core::Granularity;
//! use cce_sim::Replay;
//! use cce_workloads::catalog;
//!
//! let trace = catalog::by_name("mcf").unwrap().trace(0.5, 1);
//! let result = Replay::new(&trace)
//!     .granularity(Granularity::units(8))
//!     .capacity(trace.max_cache_bytes() / 2) // cache pressure 2
//!     .run()?
//!     .into_solo();
//! assert!(result.stats.miss_rate() > 0.0);
//! # Ok::<(), cce_sim::SimError>(())
//! ```

#![deny(unsafe_code)]

pub mod analysis;
pub mod concurrent;
pub mod exectime;
pub mod ladder;
pub mod measurement;
pub mod metrics;
pub mod overhead;
pub mod pressure;
pub mod regression;
pub mod replay;
pub mod report;
pub mod seeds;
pub mod serve;
pub mod simulator;
pub mod sweep;

pub use concurrent::{simulate_concurrent, simulate_concurrent_with, ConcurrentSimConfig};
pub use ladder::{simulate_ladder_observed, simulate_ladder_source, Engine, LadderCell};
pub use overhead::{LinearModel, OverheadModel};
pub use regression::fit_line;
pub use replay::{Replay, ReplayMatrix, ReplayReport};
pub use serve::{run_serve, ServeConfig, ServeFaults, ServeReport};
pub use simulator::{EventSource, SimConfig, SimDriver, SimError, SimResult};
pub use sweep::{resolve_jobs, SweepCell, SweepPoint};

// `cce-workloads` is a dev-dependency (doc tests and integration tests
// only), so the library proper stays decoupled from the benchmark models.
#[cfg(test)]
use cce_workloads as _;
