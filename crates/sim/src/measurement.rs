//! Instrumented-measurement campaigns — the PAPI substitute.
//!
//! The paper inserted PAPI hardware counters around DynamoRIO's eviction,
//! regeneration and unlink routines, collected >10 000 samples, and fit
//! least-squares trendlines (Figure 9 → Eqs. 2–4). We have no PAPI and no
//! DynamoRIO; instead, each routine of *our* DBT is modelled as an
//! instrumented routine whose instruction count is its true linear cost
//! plus measurement noise (cache effects, interrupts, counter skid). A
//! campaign samples the routine across realistic input sizes; the
//! regression in [`crate::regression`] then recovers the underlying
//! model — demonstrating the paper's methodology end to end and
//! validating that the recovered constants match the configured ones.

use crate::overhead::{LinearModel, OverheadModel};
use cce_util::{Rng, StdRng};

/// A routine under instruction-count instrumentation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InstrumentedRoutine {
    /// The routine's true cost model.
    pub true_model: LinearModel,
    /// Standard deviation of measurement noise, as a fraction of the true
    /// cost (PAPI-style counter jitter).
    pub relative_noise: f64,
}

impl InstrumentedRoutine {
    /// Takes one measurement at input `x`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R, x: f64) -> f64 {
        let truth = self.true_model.eval(x);
        let noise = standard_normal(rng) * self.relative_noise * truth;
        (truth + noise).max(0.0)
    }
}

/// A full measurement campaign over the three cache-management routines.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Campaign {
    /// Eviction routine (input: bytes evicted).
    pub eviction: InstrumentedRoutine,
    /// Miss/regeneration routine (input: superblock bytes).
    pub miss: InstrumentedRoutine,
    /// Unlink routine (input: incoming links removed).
    pub unlink: InstrumentedRoutine,
}

impl Campaign {
    /// A campaign whose true costs are the paper's measured models, with
    /// 8% relative noise — re-running the regression on its samples
    /// reproduces Figure 9.
    #[must_use]
    pub fn dynamorio_like() -> Campaign {
        let m = OverheadModel::cgo2004();
        Campaign {
            eviction: InstrumentedRoutine {
                true_model: m.eviction,
                relative_noise: 0.08,
            },
            miss: InstrumentedRoutine {
                true_model: m.miss,
                relative_noise: 0.08,
            },
            unlink: InstrumentedRoutine {
                true_model: m.unlink,
                relative_noise: 0.08,
            },
        }
    }

    /// Collects `n` eviction measurements across a realistic spread of
    /// eviction sizes (single superblocks up to multi-kilobyte unit
    /// flushes). Returns `(bytes, instructions)` samples.
    #[must_use]
    pub fn eviction_samples(&self, n: usize, seed: u64) -> Vec<(f64, f64)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                // Log-normal around the 230-byte median superblock,
                // times 1–32 blocks per invocation.
                let size = log_normal(&mut rng, 230.0, 0.6);
                let blocks = 1 << rng.gen_range(0..6u32);
                let bytes = (size * f64::from(blocks)).clamp(32.0, 64.0 * 1024.0);
                (bytes, self.eviction.sample(&mut rng, bytes))
            })
            .collect()
    }

    /// Collects `n` miss-service measurements across superblock sizes.
    #[must_use]
    pub fn miss_samples(&self, n: usize, seed: u64) -> Vec<(f64, f64)> {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5555_5555);
        (0..n)
            .map(|_| {
                let bytes = log_normal(&mut rng, 230.0, 0.6).clamp(32.0, 8192.0);
                (bytes, self.miss.sample(&mut rng, bytes))
            })
            .collect()
    }

    /// Collects `n` unlink measurements across link counts (1..=8).
    #[must_use]
    pub fn unlink_samples(&self, n: usize, seed: u64) -> Vec<(f64, f64)> {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xAAAA_AAAA);
        (0..n)
            .map(|_| {
                let links = f64::from(rng.gen_range(1..=8u32));
                (links, self.unlink.sample(&mut rng, links))
            })
            .collect()
    }
}

fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

fn log_normal<R: Rng + ?Sized>(rng: &mut R, median: f64, sigma: f64) -> f64 {
    (median.ln() + sigma * standard_normal(rng)).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regression::fit_line;

    #[test]
    fn regression_recovers_eviction_model() {
        // The Figure 9 pipeline: >10k samples, least squares, compare to
        // Eq. 2.
        let samples = Campaign::dynamorio_like().eviction_samples(10_000, 42);
        assert!(samples.len() >= 10_000);
        let fit = fit_line(&samples).unwrap();
        assert!(
            // cce-analyze: allow(cost-constant): tolerance check against Eq. 2, not a definition
            (fit.model.slope - 2.77).abs() < 0.25,
            "slope {}",
            fit.model.slope
        );
        assert!(
            // cce-analyze: allow(cost-constant): tolerance check against Eq. 2, not a definition
            (fit.model.intercept - 3055.0).abs() < 300.0,
            "intercept {}",
            fit.model.intercept
        );
        assert!(fit.r_squared > 0.5, "r2 {}", fit.r_squared);
    }

    #[test]
    fn regression_recovers_miss_model() {
        let samples = Campaign::dynamorio_like().miss_samples(10_000, 7);
        let fit = fit_line(&samples).unwrap();
        assert!(
            // cce-analyze: allow(cost-constant): tolerance check against Eq. 3, not a definition
            (fit.model.slope - 75.4).abs() < 4.0,
            "slope {}",
            fit.model.slope
        );
        assert!(
            // cce-analyze: allow(cost-constant): tolerance check against Eq. 3, not a definition
            (fit.model.intercept - 1922.0).abs() < 900.0,
            "intercept {}",
            fit.model.intercept
        );
    }

    #[test]
    fn regression_recovers_unlink_model() {
        let samples = Campaign::dynamorio_like().unlink_samples(10_000, 9);
        let fit = fit_line(&samples).unwrap();
        assert!(
            // cce-analyze: allow(cost-constant): tolerance check against Eq. 4, not a definition
            (fit.model.slope - 296.5).abs() < 20.0,
            "slope {}",
            fit.model.slope
        );
    }

    #[test]
    fn samples_are_deterministic_per_seed() {
        let c = Campaign::dynamorio_like();
        assert_eq!(c.eviction_samples(100, 3), c.eviction_samples(100, 3));
        assert_ne!(c.eviction_samples(100, 3), c.eviction_samples(100, 4));
    }

    #[test]
    fn measurements_are_nonnegative() {
        let c = Campaign::dynamorio_like();
        for &(x, y) in &c.unlink_samples(2000, 5) {
            assert!(x >= 1.0);
            assert!(y >= 0.0);
        }
    }
}
