//! Aggregate metrics: the unified miss rate (Eq. 1) and normalization
//! helpers for the relative figures.

use crate::simulator::SimResult;

/// The paper's weighted unified miss rate (Eq. 1): total misses over
/// total accesses across all benchmarks, i.e. each benchmark weighted by
/// its access count.
///
/// # Example
///
/// ```
/// use cce_sim::metrics::unified_miss_rate;
/// // (misses, accesses) pairs: 10/100 and 30/100 → 40/200 = 0.2.
/// let rate = unified_miss_rate([(10, 100), (30, 100)]);
/// assert!((rate - 0.2).abs() < 1e-12);
/// ```
#[must_use]
pub fn unified_miss_rate<I: IntoIterator<Item = (u64, u64)>>(miss_access_pairs: I) -> f64 {
    let (misses, accesses) = miss_access_pairs
        .into_iter()
        .fold((0u64, 0u64), |(m, a), (mi, ai)| (m + mi, a + ai));
    if accesses == 0 {
        0.0
    } else {
        misses as f64 / accesses as f64
    }
}

/// Unified miss rate over simulator results.
#[must_use]
pub fn unified_miss_rate_of(results: &[SimResult]) -> f64 {
    unified_miss_rate(results.iter().map(|r| (r.stats.misses, r.stats.accesses)))
}

/// Total management overhead (instructions) summed over results.
#[must_use]
pub fn total_overhead_of(results: &[SimResult]) -> f64 {
    results.iter().map(SimResult::total_overhead).sum()
}

/// Total eviction-mechanism invocations summed over results.
#[must_use]
pub fn total_evictions_of(results: &[SimResult]) -> u64 {
    results.iter().map(|r| r.stats.eviction_invocations).sum()
}

/// Normalizes a series to its first element (the paper's "relative to
/// FLUSH" and "relative to finest-grained FIFO" presentations).
///
/// Returns an empty vector if `series` is empty; a zero baseline yields
/// zeros (all-zero series) to avoid NaNs.
#[must_use]
pub fn relative_to_first(series: &[f64]) -> Vec<f64> {
    let Some(&base) = series.first() else {
        return Vec::new();
    };
    if base == 0.0 {
        return vec![0.0; series.len()];
    }
    series.iter().map(|v| v / base).collect()
}

/// Normalizes a series to its last element.
#[must_use]
pub fn relative_to_last(series: &[f64]) -> Vec<f64> {
    let Some(&base) = series.last() else {
        return Vec::new();
    };
    if base == 0.0 {
        return vec![0.0; series.len()];
    }
    series.iter().map(|v| v / base).collect()
}

/// Fraction of links crossing unit boundaries, weighted across results
/// (Figure 13).
#[must_use]
pub fn unified_inter_unit_fraction(results: &[SimResult]) -> f64 {
    let inter: u64 = results
        .iter()
        .map(|r| r.stats.inter_unit_links_created)
        .sum();
    let total: u64 = results.iter().map(|r| r.stats.links_created).sum();
    if total == 0 {
        0.0
    } else {
        inter as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unified_rate_weights_by_accesses() {
        // Benchmark A: 1 miss / 10 accesses; B: 90 misses / 90 accesses.
        // Unweighted mean of rates would be 0.55; unified is 91/100.
        let r = unified_miss_rate([(1, 10), (90, 90)]);
        assert!((r - 0.91).abs() < 1e-12);
    }

    #[test]
    fn unified_rate_empty_is_zero() {
        assert_eq!(unified_miss_rate([]), 0.0);
        assert_eq!(unified_miss_rate([(0, 0)]), 0.0);
    }

    #[test]
    fn relative_series() {
        assert_eq!(relative_to_first(&[2.0, 4.0, 1.0]), vec![1.0, 2.0, 0.5]);
        assert_eq!(relative_to_last(&[2.0, 4.0, 1.0]), vec![2.0, 4.0, 1.0]);
        assert!(relative_to_first(&[]).is_empty());
        assert_eq!(relative_to_first(&[0.0, 5.0]), vec![0.0, 0.0]);
    }
}
