//! The paper's measured cost models (Equations 2–4).
//!
//! All three are linear models in instructions:
//!
//! * **Eviction** (Eq. 2): `2.77 · bytes + 3055` per eviction-mechanism
//!   invocation — dominated by the fixed invocation cost, which is the
//!   entire case for coarser granules.
//! * **Miss / regeneration** (Eq. 3): `75.4 · bytes + 1922` per code-cache
//!   miss — dominated by the per-byte re-translation work (~50 000
//!   instructions for a typical SPEC superblock, §3.2).
//! * **Unlinking** (Eq. 4): `296.5 · links + 95.7` per evicted superblock
//!   with incoming inter-unit links.

/// A fitted line `y = slope · x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearModel {
    /// Cost per unit of the independent variable.
    pub slope: f64,
    /// Fixed cost per event.
    pub intercept: f64,
}

/// Eq. 2 as measured in the paper: instructions per eviction-mechanism
/// invocation vs bytes evicted. This is the **only** place in the
/// workspace the constants may be spelled out (enforced by
/// `cce-analyze`'s cost-constant lint); everything else imports the
/// model or formats it via [`LinearModel`]'s `Display`.
pub const EVICTION_EQ2: LinearModel = LinearModel {
    slope: 2.77,
    intercept: 3055.0,
};

/// Eq. 3: instructions per code-cache miss vs superblock bytes. See
/// [`EVICTION_EQ2`] for the single-definition-site rule.
pub const MISS_EQ3: LinearModel = LinearModel {
    slope: 75.4,
    intercept: 1922.0,
};

/// Eq. 4: instructions per unlink operation vs incoming links removed.
/// See [`EVICTION_EQ2`] for the single-definition-site rule.
pub const UNLINK_EQ4: LinearModel = LinearModel {
    slope: 296.5,
    intercept: 95.7,
};

impl LinearModel {
    /// Evaluates the model at `x`.
    #[must_use]
    pub fn eval(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }

    /// The shared figure-caption label, e.g. `"Eq. 4: 296.50*x + 95.7"`
    /// — one formatter so captions cannot drift from the model they
    /// describe.
    #[must_use]
    pub fn eq_label(&self, eq: u8) -> String {
        format!("Eq. {eq}: {self}")
    }
}

impl std::fmt::Display for LinearModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.2}*x + {:.1}", self.slope, self.intercept)
    }
}

/// The three cost models used by the simulator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverheadModel {
    /// Eq. 2: instructions per eviction invocation vs bytes evicted.
    pub eviction: LinearModel,
    /// Eq. 3: instructions per miss vs superblock bytes.
    pub miss: LinearModel,
    /// Eq. 4: instructions per unlink operation vs links removed.
    pub unlink: LinearModel,
}

impl OverheadModel {
    /// The constants measured on DynamoRIO in the paper (Eqs. 2–4).
    #[must_use]
    pub fn cgo2004() -> OverheadModel {
        OverheadModel {
            eviction: EVICTION_EQ2,
            miss: MISS_EQ3,
            unlink: UNLINK_EQ4,
        }
    }

    /// Instructions to evict `bytes` in one invocation (Eq. 2).
    #[must_use]
    pub fn eviction_cost(&self, bytes: u64) -> f64 {
        self.eviction.eval(bytes as f64)
    }

    /// Instructions to service a miss for a `bytes`-sized superblock
    /// (Eq. 3).
    #[must_use]
    pub fn miss_cost(&self, bytes: u64) -> f64 {
        self.miss
            .eval(f64::from(u32::try_from(bytes).unwrap_or(u32::MAX)))
    }

    /// Instructions to unpatch `links` incoming links of one evicted
    /// superblock (Eq. 4).
    #[must_use]
    pub fn unlink_cost(&self, links: u32) -> f64 {
        self.unlink.eval(f64::from(links))
    }

    /// Σ Eq. 2 over `invocations` eviction invocations that together
    /// freed `bytes` — the linearity of the model means the aggregate
    /// counts of an [`cce_core::InsertSummary`] are sufficient, which is
    /// what lets the simulator charge overheads without materializing
    /// per-eviction reports.
    #[must_use]
    pub fn eviction_cost_total(&self, invocations: u64, bytes: u64) -> f64 {
        self.eviction.slope * bytes as f64 + self.eviction.intercept * invocations as f64
    }

    /// Σ Eq. 4 over `operations` unlink operations that together removed
    /// `links` incoming links.
    #[must_use]
    pub fn unlink_cost_total(&self, operations: u64, links: u64) -> f64 {
        self.unlink.slope * links as f64 + self.unlink.intercept * operations as f64
    }
}

impl Default for OverheadModel {
    fn default() -> OverheadModel {
        OverheadModel::cgo2004()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_worked_examples_hold() {
        let m = OverheadModel::cgo2004();
        // §4.3: "An eviction of 230 bytes … would require 3,690
        // instructions."
        assert!((m.eviction_cost(230) - 3692.1).abs() < 3.0);
        // §4.3: "a cache miss for a 230-byte superblock … 19,264
        // instructions."
        assert!((m.miss_cost(230) - 19264.0).abs() < 81.0);
        // Eq. 4 at 1 link.
        assert!((m.unlink_cost(1) - 392.2).abs() < 0.5);
    }

    #[test]
    fn eviction_fixed_cost_dominates_small_blocks() {
        // The paper's key observation: the constant term dominates, so
        // evicting bigger regions amortizes better.
        let m = OverheadModel::cgo2004();
        let one_big = m.eviction_cost(10 * 230);
        let ten_small = 10.0 * m.eviction_cost(230);
        assert!(one_big < ten_small / 3.0);
    }

    #[test]
    fn miss_cost_is_byte_dominated() {
        let m = OverheadModel::cgo2004();
        let c = m.miss_cost(500);
        assert!(c > 0.9 * (75.4 * 500.0));
    }

    #[test]
    fn linear_model_display() {
        assert_eq!(EVICTION_EQ2.to_string(), "2.77*x + 3055.0");
        assert_eq!(MISS_EQ3.to_string(), "75.40*x + 1922.0");
        assert_eq!(UNLINK_EQ4.to_string(), "296.50*x + 95.7");
    }

    #[test]
    fn eq_label_is_the_shared_caption_format() {
        assert_eq!(UNLINK_EQ4.eq_label(4), "Eq. 4: 296.50*x + 95.7");
    }

    #[test]
    fn default_is_paper_constants() {
        assert_eq!(OverheadModel::default(), OverheadModel::cgo2004());
    }

    #[test]
    fn batch_costs_match_per_event_sums() {
        let m = OverheadModel::cgo2004();
        let per_event = m.eviction_cost(100) + m.eviction_cost(350) + m.eviction_cost(0);
        assert!((m.eviction_cost_total(3, 450) - per_event).abs() < 1e-9);
        let per_op = m.unlink_cost(2) + m.unlink_cost(5);
        assert!((m.unlink_cost_total(2, 7) - per_op).abs() < 1e-9);
    }
}
