//! Cache-pressure sweeps (`maxCache / n`, §4.2).
//!
//! The paper sizes every cache relative to the benchmark's own unbounded
//! footprint: `capacity = maxCache / pressure` with pressure ∈ 2..=10,
//! which guarantees the replacement policy is actually stressed. These
//! helpers run a trace across a (granularity × pressure) grid.

use crate::simulator::{simulate_source_session, EventSource, SimConfig, SimError, SimResult};
use cce_core::{CodeCache, Granularity, ShardedCache};
use cce_dbt::{SuperblockInfo, TraceLog};

/// Minimum capacity used by [`capacity_for_pressure`], so extreme
/// pressures on tiny workloads still admit at least a few superblocks.
pub const MIN_CAPACITY: u64 = 4096;

/// The paper's default pressure sweep (2..=10).
#[must_use]
pub fn default_pressures() -> Vec<u32> {
    (2..=10).collect()
}

/// Computes `maxCache / pressure`, floored at [`MIN_CAPACITY`].
///
/// # Panics
///
/// Panics if `pressure == 0`.
#[must_use]
pub fn capacity_for_pressure(max_cache_bytes: u64, pressure: u32) -> u64 {
    assert!(pressure > 0, "pressure must be nonzero");
    (max_cache_bytes / u64::from(pressure)).max(MIN_CAPACITY)
}

/// One cell of a pressure sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct PressurePoint {
    /// Cache-pressure factor `n`.
    pub pressure: u32,
    /// Granularity simulated.
    pub granularity: Granularity,
    /// The simulation outcome.
    pub result: SimResult,
}

/// Clamps a unit-partitioned granularity so each unit can hold the
/// trace's largest superblock — a real system never partitions below its
/// biggest trace, it just degenerates toward per-superblock eviction.
/// Fine-grained FIFO and FLUSH pass through unchanged.
#[must_use]
pub fn effective_granularity(
    granularity: Granularity,
    capacity: u64,
    max_block_bytes: u64,
) -> Granularity {
    match granularity.unit_count() {
        None | Some(1) => granularity,
        Some(n) => {
            let fit = (capacity / max_block_bytes.max(1)).max(1);
            let clamped = u64::from(n).min(fit);
            Granularity::units(u32::try_from(clamped).unwrap_or(u32::MAX))
        }
    }
}

/// Whole-trace sizing facts a sweep needs at every cell. Both are O(n)
/// scans of the trace, so a sweep runner computes them **once per trace
/// per plan** instead of once per cell (the `--shards` axis would
/// otherwise multiply the redundant scans).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceSizing {
    /// The trace's unbounded footprint (`maxCache`, §4.2).
    pub max_cache_bytes: u64,
    /// The largest single superblock, for unit-count clamping.
    pub max_block_bytes: u64,
}

impl TraceSizing {
    /// Scans `trace` once for both sizing facts.
    #[must_use]
    pub fn of(trace: &TraceLog) -> TraceSizing {
        TraceSizing::of_source(trace)
    }

    /// [`TraceSizing::of`] for any [`EventSource`] — both facts come
    /// from the registry alone, so a streaming header is enough.
    #[must_use]
    pub fn of_source<T: EventSource + ?Sized>(source: &T) -> TraceSizing {
        TraceSizing::of_registry(source.registry())
    }

    /// [`TraceSizing::of`] from a bare superblock registry — what a
    /// streaming reader or a serve-mode header hands over before any
    /// events arrive.
    #[must_use]
    pub fn of_registry(registry: &[SuperblockInfo]) -> TraceSizing {
        TraceSizing {
            max_cache_bytes: registry.iter().map(|s| u64::from(s.size)).sum(),
            max_block_bytes: registry
                .iter()
                .map(|s| u64::from(s.size))
                .max()
                .unwrap_or(1),
        }
    }
}

/// Simulates `trace` at one `(granularity, pressure)` point with `base`
/// options (its granularity/capacity fields are overridden). The unit
/// count is clamped via [`effective_granularity`] so units always fit the
/// trace's largest superblock; the result keeps the *requested*
/// granularity's label so sweep tables stay aligned.
///
/// # Errors
///
/// Propagates [`SimError`] from the simulator.
pub fn simulate_at_pressure(
    trace: &TraceLog,
    granularity: Granularity,
    pressure: u32,
    base: &SimConfig,
) -> Result<SimResult, SimError> {
    simulate_cell(
        trace,
        TraceSizing::of(trace),
        granularity,
        pressure,
        1,
        base,
    )
}

/// [`simulate_at_pressure`] with the whole-trace scans hoisted out
/// (pass a cached [`TraceSizing`]) and a shard-count axis: `shards > 1`
/// splits the cell's capacity over a consistent-hashed
/// [`cce_core::ShardedCache`] at **fixed total capacity**, and the unit
/// clamp applies per shard (each shard is its own eviction domain).
///
/// # Errors
///
/// Propagates [`SimError`] from the simulator.
pub fn simulate_cell(
    trace: &TraceLog,
    sizing: TraceSizing,
    granularity: Granularity,
    pressure: u32,
    shards: u32,
    base: &SimConfig,
) -> Result<SimResult, SimError> {
    simulate_cell_source(trace, sizing, granularity, pressure, shards, base)
}

/// [`simulate_cell`] over any [`EventSource`] — a sweep feeds every cell
/// the same decoded [`cce_dbt::SharedTrace`] chunks without re-parsing.
///
/// # Errors
///
/// Propagates [`SimError`] from the simulator.
pub fn simulate_cell_source<T: EventSource + ?Sized>(
    source: &T,
    sizing: TraceSizing,
    granularity: Granularity,
    pressure: u32,
    shards: u32,
    base: &SimConfig,
) -> Result<SimResult, SimError> {
    let config = cell_config(sizing, granularity, pressure, shards, base);
    let label = config.granularity.label();
    let mut result = if shards <= 1 {
        let cache = CodeCache::with_granularity(config.granularity, config.capacity)?;
        simulate_source_session(source, cache, label, &config)?
    } else {
        let cache = ShardedCache::with_granularity(config.granularity, config.capacity, shards)?;
        simulate_source_session(source, cache, label, &config)?
    };
    result.granularity_label = granularity.label();
    Ok(result)
}

/// Resolves one sweep cell's geometry into a concrete [`SimConfig`]:
/// `capacity = maxCache / pressure` (floored at [`MIN_CAPACITY`]) and
/// the granularity's unit count clamped via [`effective_granularity`]
/// against the **per-shard** capacity — each shard is its own eviction
/// domain, so units must fit the largest superblock inside one shard.
///
/// # Panics
///
/// Panics if `pressure == 0` (callers such as [`crate::replay::Replay`]
/// validate first and surface [`SimError::Config`] instead).
#[must_use]
pub fn cell_config(
    sizing: TraceSizing,
    granularity: Granularity,
    pressure: u32,
    shards: u32,
    base: &SimConfig,
) -> SimConfig {
    let capacity = capacity_for_pressure(sizing.max_cache_bytes, pressure);
    let shard_capacity = capacity / u64::from(shards.max(1));
    SimConfig {
        granularity: effective_granularity(granularity, shard_capacity, sizing.max_block_bytes),
        capacity,
        ..*base
    }
}

/// Sweeps `trace` over the full `(granularity × pressure)` grid.
///
/// # Errors
///
/// Propagates the first [`SimError`] encountered.
pub fn sweep_trace(
    trace: &TraceLog,
    granularities: &[Granularity],
    pressures: &[u32],
    base: &SimConfig,
) -> Result<Vec<PressurePoint>, SimError> {
    let mut out = Vec::with_capacity(granularities.len() * pressures.len());
    for &pressure in pressures {
        for &granularity in granularities {
            let result = simulate_at_pressure(trace, granularity, pressure, base)?;
            out.push(PressurePoint {
                pressure,
                granularity,
                result,
            });
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cce_workloads::catalog;

    #[test]
    fn capacity_math() {
        assert_eq!(capacity_for_pressure(1_000_000, 2), 500_000);
        assert_eq!(capacity_for_pressure(1_000_000, 10), 100_000);
        assert_eq!(capacity_for_pressure(100, 10), MIN_CAPACITY);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_pressure_panics() {
        let _ = capacity_for_pressure(100, 0);
    }

    #[test]
    fn sweep_covers_grid() {
        let trace = catalog::by_name("mcf").unwrap().trace(0.3, 1);
        let gs = [Granularity::Flush, Granularity::Superblock];
        let ps = [2, 10];
        let points = sweep_trace(&trace, &gs, &ps, &SimConfig::default()).unwrap();
        assert_eq!(points.len(), 4);
        // Higher pressure ⇒ smaller capacity ⇒ miss rate can only rise
        // (for the same granularity).
        for g in gs {
            let low = points
                .iter()
                .find(|p| p.pressure == 2 && p.granularity == g)
                .unwrap();
            let high = points
                .iter()
                .find(|p| p.pressure == 10 && p.granularity == g)
                .unwrap();
            assert!(
                high.result.stats.miss_rate() >= low.result.stats.miss_rate(),
                "{g}: pressure 10 should not miss less than pressure 2"
            );
        }
    }

    #[test]
    fn miss_rates_decline_with_finer_granularity_under_pressure() {
        // The paper's Figure 6 shape on a single benchmark.
        let trace = catalog::by_name("gzip").unwrap().trace(0.4, 3);
        let base = SimConfig::default();
        let flush = simulate_at_pressure(&trace, Granularity::Flush, 2, &base).unwrap();
        let fine = simulate_at_pressure(&trace, Granularity::Superblock, 2, &base).unwrap();
        assert!(
            fine.stats.miss_rate() <= flush.stats.miss_rate(),
            "fine {} vs flush {}",
            fine.stats.miss_rate(),
            flush.stats.miss_rate()
        );
    }
}
