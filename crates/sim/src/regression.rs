//! Ordinary least-squares regression.
//!
//! The paper derived its cost models by fitting least-squares trendlines
//! to PAPI instruction-count samples (Figure 9). [`fit_line`] is that
//! fit; [`FitResult`] also carries R² so the experiment output can report
//! the quality of the recovered model.

use crate::overhead::LinearModel;

/// A least-squares fit with its coefficient of determination.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FitResult {
    /// The fitted line.
    pub model: LinearModel,
    /// Coefficient of determination (1.0 = perfect fit).
    pub r_squared: f64,
    /// Number of samples fitted.
    pub n: usize,
}

/// Fits `y = slope·x + intercept` to the samples by ordinary least
/// squares.
///
/// Returns `None` if there are fewer than two samples or the x-values are
/// all identical (the slope would be undefined).
///
/// # Example
///
/// ```
/// use cce_sim::fit_line;
/// let samples: Vec<(f64, f64)> = (0..100)
///     .map(|i| (i as f64, 2.77 * i as f64 + 3055.0))
///     .collect();
/// let fit = fit_line(&samples).unwrap();
/// assert!((fit.model.slope - 2.77).abs() < 1e-9);
/// assert!((fit.model.intercept - 3055.0).abs() < 1e-6);
/// assert!(fit.r_squared > 0.999999);
/// ```
#[must_use]
pub fn fit_line(samples: &[(f64, f64)]) -> Option<FitResult> {
    let n = samples.len();
    if n < 2 {
        return None;
    }
    let nf = n as f64;
    let sum_x: f64 = samples.iter().map(|&(x, _)| x).sum();
    let sum_y: f64 = samples.iter().map(|&(_, y)| y).sum();
    let mean_x = sum_x / nf;
    let mean_y = sum_y / nf;
    let sxx: f64 = samples
        .iter()
        .map(|&(x, _)| (x - mean_x) * (x - mean_x))
        .sum();
    if sxx == 0.0 {
        return None;
    }
    let sxy: f64 = samples
        .iter()
        .map(|&(x, y)| (x - mean_x) * (y - mean_y))
        .sum();
    let slope = sxy / sxx;
    let intercept = mean_y - slope * mean_x;

    let ss_tot: f64 = samples
        .iter()
        .map(|&(_, y)| (y - mean_y) * (y - mean_y))
        .sum();
    let ss_res: f64 = samples
        .iter()
        .map(|&(x, y)| {
            let pred = slope * x + intercept;
            (y - pred) * (y - pred)
        })
        .sum();
    let r_squared = if ss_tot == 0.0 {
        1.0
    } else {
        1.0 - ss_res / ss_tot
    };

    Some(FitResult {
        model: LinearModel { slope, intercept },
        r_squared,
        n,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_line_recovers_exactly() {
        let s: Vec<(f64, f64)> = (1..50).map(|i| (i as f64, 3.0 * i as f64 - 7.0)).collect();
        let f = fit_line(&s).unwrap();
        assert!((f.model.slope - 3.0).abs() < 1e-12);
        assert!((f.model.intercept + 7.0).abs() < 1e-10);
        assert!((f.r_squared - 1.0).abs() < 1e-12);
        assert_eq!(f.n, 49);
    }

    #[test]
    fn constant_y_has_zero_slope_and_perfect_r2() {
        let s: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 5.0)).collect();
        let f = fit_line(&s).unwrap();
        assert!(f.model.slope.abs() < 1e-12);
        assert!((f.model.intercept - 5.0).abs() < 1e-12);
        assert_eq!(f.r_squared, 1.0);
    }

    #[test]
    fn degenerate_inputs_are_none() {
        assert!(fit_line(&[]).is_none());
        assert!(fit_line(&[(1.0, 2.0)]).is_none());
        assert!(
            fit_line(&[(3.0, 1.0), (3.0, 9.0)]).is_none(),
            "vertical line"
        );
    }

    #[test]
    fn noise_lowers_r2_but_keeps_slope() {
        // Deterministic pseudo-noise.
        let s: Vec<(f64, f64)> = (0..1000)
            .map(|i| {
                let x = i as f64;
                let noise = ((i * 2_654_435_761_u64) % 1000) as f64 / 1000.0 - 0.5;
                (x, 2.0 * x + 10.0 + noise * 50.0)
            })
            .collect();
        let f = fit_line(&s).unwrap();
        assert!((f.model.slope - 2.0).abs() < 0.01);
        assert!(f.r_squared > 0.99);
        assert!(f.r_squared < 1.0);
    }
}
