//! The consolidated replay entry point: [`Replay`].
//!
//! PRs 4–6 grew a family of parallel `simulate_*` wrappers — in-memory,
//! `SharedTrace`, streaming reader, sharded, custom-session, concurrent
//! multi-tenant — that all funneled into the same chunked engine
//! ([`crate::simulator::simulate_event_chunks`]). This module folds the
//! whole family behind one builder:
//!
//! ```
//! use cce_sim::replay::Replay;
//! use cce_sim::simulator::SimConfig;
//! use cce_workloads::catalog;
//!
//! let trace = catalog::by_name("mcf").unwrap().trace(0.3, 1);
//! let r = Replay::new(&trace)
//!     .config(&SimConfig::default())
//!     .pressure(2)       // capacity = maxCache / 2, unit-clamped
//!     .shards(2)         // over a 2-shard consistent-hashed cache
//!     .run()?
//!     .into_solo();
//! assert!(r.stats.miss_rate() > 0.0);
//! # Ok::<(), cce_sim::SimError>(())
//! ```
//!
//! * **Input** — [`Replay::new`] takes any [`EventSource`] (a
//!   [`cce_dbt::TraceLog`], a decode-once [`cce_dbt::SharedTrace`]);
//!   [`Replay::stream`] takes a streaming [`cce_dbt::TraceReader`]
//!   whose decoder thread overlaps I/O with the simulation.
//! * **Geometry** — [`Replay::granularity`] / [`Replay::capacity`] set
//!   the cell directly; [`Replay::pressure`] derives the capacity from
//!   the trace's own footprint (`maxCache / n`, §4.2) with the unit
//!   clamp of [`crate::pressure::effective_granularity`];
//!   [`Replay::shards`] splits the same total capacity over a
//!   consistent-hashed [`cce_core::ShardedCache`].
//! * **Session** — [`Replay::session`] swaps in an arbitrary pre-built
//!   [`CacheSession`] (custom policies, ablations); the builder's own
//!   geometry knobs then only shape the overhead model.
//! * **Tenancy** — [`Replay::tenants`] replays the trace as N identical
//!   guests over one shared [`cce_core::ConcurrentSession`] on
//!   [`Replay::threads`] workers; without an arbiter every tenant's
//!   result is byte-identical to its solo sharded run.
//! * **Sweeps** — [`Replay::matrix`] runs the full `(trace × shards ×
//!   pressure × granularity)` grid across worker threads with the
//!   deterministic pre-indexed slots of [`crate::sweep`].
//!
//! Every path lands in the same [`crate::simulator::SimDriver`] core,
//! so results are byte-identical to the pre-builder entry points — the
//! streaming-replay conformance suite pins this.

use crate::concurrent::{simulate_concurrent, ConcurrentSimConfig};
use crate::ladder::Engine;
use crate::pressure::{cell_config, TraceSizing};
use crate::simulator::{
    simulate_reader_session, simulate_source_session, EventSource, SimConfig, SimError, SimResult,
};
use crate::sweep::{run_matrix, SweepPoint};
use cce_core::{ArbiterConfig, CacheSession, CodeCache, Granularity, ShardedCache};
use cce_dbt::{SharedTrace, TraceReader};

/// Where the events come from: a replayable source or a consume-once
/// streaming reader.
enum Input<'a> {
    Source(&'a dyn EventSource),
    Reader(&'a mut TraceReader),
}

/// One replay, being configured. See the [module docs](self) for the
/// full tour; [`Replay::run`] executes it.
pub struct Replay<'a> {
    input: Input<'a>,
    config: SimConfig,
    pressure: Option<u32>,
    shards: u32,
    tenants: usize,
    threads: usize,
    slice: usize,
    arbiter: Option<ArbiterConfig>,
    session: Option<(Box<dyn CacheSession>, String)>,
}

impl<'a> Replay<'a> {
    /// Replays any [`EventSource`]: an in-memory [`cce_dbt::TraceLog`], a
    /// decode-once [`SharedTrace`].
    #[must_use]
    pub fn new<T: EventSource>(source: &'a T) -> Replay<'a> {
        Replay {
            input: Input::Source(source),
            config: SimConfig::default(),
            pressure: None,
            shards: 1,
            tenants: 1,
            threads: 1,
            slice: 256,
            arbiter: None,
            session: None,
        }
    }

    /// Replays a streaming [`TraceReader`]: the reader's decoder thread
    /// stays ahead of the simulation, so peak event memory is O(chunk).
    /// The reader is consumed to its end (or first error).
    #[must_use]
    pub fn stream(reader: &'a mut TraceReader) -> Replay<'a> {
        let mut r = Replay::new(&EMPTY_SOURCE);
        r.input = Input::Reader(reader);
        r
    }

    /// Starts a sweep over `traces`: the full `(trace × shards ×
    /// pressure × granularity)` grid on a deterministic worker pool.
    #[must_use]
    pub fn matrix<T: EventSource + Sync>(traces: &'a [T]) -> ReplayMatrix<'a, T> {
        ReplayMatrix {
            traces,
            granularities: vec![Granularity::Superblock],
            pressures: vec![2],
            shard_counts: vec![1],
            base: SimConfig::default(),
            jobs: 1,
            engine: Engine::default(),
        }
    }

    /// Uses `base` as the full simulator configuration (granularity,
    /// capacity, overhead models, chaining switches).
    #[must_use]
    pub fn config(mut self, base: &SimConfig) -> Replay<'a> {
        self.config = *base;
        self
    }

    /// Sets the eviction granularity.
    #[must_use]
    pub fn granularity(mut self, granularity: Granularity) -> Replay<'a> {
        self.config.granularity = granularity;
        self
    }

    /// Sets the capacity in bytes directly.
    #[must_use]
    pub fn capacity(mut self, bytes: u64) -> Replay<'a> {
        self.config.capacity = bytes;
        self
    }

    /// Derives the capacity from the trace's own unbounded footprint:
    /// `maxCache / pressure`, floored at
    /// [`crate::pressure::MIN_CAPACITY`], with the granularity's unit
    /// count clamped so every unit fits the largest superblock
    /// (per shard, when sharded). Overrides [`Replay::capacity`].
    #[must_use]
    pub fn pressure(mut self, pressure: u32) -> Replay<'a> {
        self.pressure = Some(pressure);
        self
    }

    /// Splits the total capacity over `shards` consistent-hashed shards
    /// (1 = a bare cache).
    #[must_use]
    pub fn shards(mut self, shards: u32) -> Replay<'a> {
        self.shards = shards.max(1);
        self
    }

    /// Replays against a pre-built session (any [`CacheSession`]) with
    /// `label` naming it in the result. The session brings its own
    /// geometry; the builder's granularity/capacity then only shape the
    /// overhead model. Solo replay only — combining this with
    /// [`Replay::tenants`] is a configuration error.
    #[must_use]
    pub fn session<S: CacheSession + 'static>(
        mut self,
        session: S,
        label: impl Into<String>,
    ) -> Replay<'a> {
        self.session = Some((Box::new(session), label.into()));
        self
    }

    /// Replays the trace as `tenants` identical guests sharing one
    /// concurrent cache (each tenant gets the configured capacity, split
    /// over the configured shards exactly like its solo run).
    #[must_use]
    pub fn tenants(mut self, tenants: usize) -> Replay<'a> {
        self.tenants = tenants.max(1);
        self
    }

    /// Worker threads for the concurrent tenant replay (default 1, the
    /// fully reproducible setting).
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Replay<'a> {
        self.threads = threads.max(1);
        self
    }

    /// Events per round-robin turn within a concurrent worker.
    #[must_use]
    pub fn slice(mut self, slice: usize) -> Replay<'a> {
        self.slice = slice.max(1);
        self
    }

    /// Enables Memshare-style capacity arbitration between tenants.
    #[must_use]
    pub fn arbiter(mut self, cfg: ArbiterConfig) -> Replay<'a> {
        self.arbiter = Some(cfg);
        self
    }

    /// Executes the replay.
    ///
    /// # Errors
    ///
    /// [`SimError::Config`] for contradictory knobs (zero pressure, a
    /// custom session combined with tenants), plus every error class of
    /// the underlying engine ([`SimError::Cache`],
    /// [`SimError::UnknownSuperblock`], [`SimError::EmptyTrace`],
    /// [`SimError::Ingest`]).
    pub fn run(self) -> Result<ReplayReport, SimError> {
        let Replay {
            mut input,
            mut config,
            pressure,
            shards,
            tenants,
            threads,
            slice,
            arbiter,
            session,
        } = self;
        if let Some(p) = pressure {
            if p == 0 {
                return Err(SimError::Config("pressure must be nonzero"));
            }
            let sizing = match &input {
                Input::Source(s) => TraceSizing::of_source(*s),
                Input::Reader(r) => TraceSizing::of_registry(r.superblocks()),
            };
            config = cell_config(sizing, config.granularity, p, shards, &config);
        }

        if tenants > 1 {
            if session.is_some() {
                return Err(SimError::Config(
                    "a custom session applies to solo replay only",
                ));
            }
            let shared = match input {
                Input::Source(s) => materialize(s),
                Input::Reader(r) => {
                    collect_reader(r).map_err(|e| SimError::Ingest(e.to_string()))?
                }
            };
            let cfg = ConcurrentSimConfig {
                sim: config,
                shards,
                threads,
                slice,
                arbiter,
            };
            let traces = vec![shared; tenants];
            return ReplayReport::from_results(simulate_concurrent(&traces, &cfg)?);
        }

        let result = match session {
            Some((boxed, label)) => run_solo(&mut input, boxed, label, &config)?,
            None if shards <= 1 => {
                let cache = CodeCache::with_granularity(config.granularity, config.capacity)?;
                run_solo(&mut input, cache, config.granularity.label(), &config)?
            }
            None => {
                let cache =
                    ShardedCache::with_granularity(config.granularity, config.capacity, shards)?;
                run_solo(&mut input, cache, config.granularity.label(), &config)?
            }
        };
        ReplayReport::from_results(vec![result])
    }
}

impl std::fmt::Debug for Replay<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Replay")
            .field("config", &self.config)
            .field("pressure", &self.pressure)
            .field("shards", &self.shards)
            .field("tenants", &self.tenants)
            .field("threads", &self.threads)
            .finish_non_exhaustive()
    }
}

/// Placeholder source [`Replay::stream`] swaps out before use.
static EMPTY_SOURCE: EmptySource = EmptySource;

#[derive(Debug)]
struct EmptySource;

impl EventSource for EmptySource {
    fn source_name(&self) -> &str {
        ""
    }
    fn registry(&self) -> &[cce_dbt::SuperblockInfo] {
        &[]
    }
    fn event_count(&self) -> u64 {
        0
    }
    fn event_chunks(&self) -> Box<dyn Iterator<Item = &[cce_dbt::TraceEvent]> + '_> {
        Box::new(std::iter::empty())
    }
}

fn run_solo<S: CacheSession>(
    input: &mut Input<'_>,
    session: S,
    label: String,
    config: &SimConfig,
) -> Result<SimResult, SimError> {
    match input {
        Input::Source(s) => simulate_source_session(*s, session, label, config),
        Input::Reader(r) => simulate_reader_session(r, session, label, config),
    }
}

/// Copies any [`EventSource`] into a [`SharedTrace`] the concurrent
/// runner can clone per tenant ( `Arc` clones — the events are copied
/// exactly once).
fn materialize(source: &dyn EventSource) -> SharedTrace {
    SharedTrace {
        name: source.source_name().to_owned(),
        superblocks: source.registry().to_vec().into(),
        event_count: source.event_count(),
        chunks: source.event_chunks().map(|c| c.to_vec().into()).collect(),
    }
}

fn collect_reader(
    reader: &mut TraceReader,
) -> Result<SharedTrace, cce_dbt::trace_log::TraceLogError> {
    let mut chunks = Vec::new();
    let mut total = 0u64;
    while let Some(chunk) = reader.next_chunk() {
        let chunk = chunk?;
        total += chunk.len() as u64;
        chunks.push(chunk);
    }
    Ok(SharedTrace {
        name: reader.name().to_owned(),
        superblocks: reader.superblocks_shared(),
        event_count: total,
        chunks,
    })
}

/// The outcome of a [`Replay::run`]: one [`SimResult`] per tenant (a
/// solo replay is the 1-tenant case), in tenant order. Construction
/// guarantees at least one result, so [`ReplayReport::solo`] and
/// [`ReplayReport::into_solo`] never panic.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayReport {
    head: SimResult,
    tail: Vec<SimResult>,
}

impl ReplayReport {
    fn from_results(mut results: Vec<SimResult>) -> Result<ReplayReport, SimError> {
        if results.is_empty() {
            return Err(SimError::EmptyTrace);
        }
        let tail = results.split_off(1);
        let Some(head) = results.pop() else {
            return Err(SimError::EmptyTrace);
        };
        Ok(ReplayReport { head, tail })
    }

    /// Tenant 0's result — *the* result of a solo replay.
    #[must_use]
    pub fn solo(&self) -> &SimResult {
        &self.head
    }

    /// Consumes the report into tenant 0's result.
    #[must_use]
    pub fn into_solo(self) -> SimResult {
        self.head
    }

    /// Number of tenants (1 for a solo replay).
    #[must_use]
    pub fn tenant_count(&self) -> usize {
        1 + self.tail.len()
    }

    /// All per-tenant results, in tenant order.
    pub fn tenants(&self) -> impl Iterator<Item = &SimResult> {
        std::iter::once(&self.head).chain(self.tail.iter())
    }

    /// Consumes the report into the per-tenant result vector.
    #[must_use]
    pub fn into_tenants(self) -> Vec<SimResult> {
        let mut out = Vec::with_capacity(1 + self.tail.len());
        out.push(self.head);
        out.extend(self.tail);
        out
    }
}

/// A planned sweep over many traces — built by [`Replay::matrix`], run
/// by [`ReplayMatrix::run`]. Cells are enumerated in the canonical
/// [`crate::sweep::plan`] order and executed on `jobs` worker threads
/// with pre-indexed result slots, so output is byte-identical at any
/// worker count.
#[derive(Debug)]
pub struct ReplayMatrix<'a, T: EventSource + Sync> {
    traces: &'a [T],
    granularities: Vec<Granularity>,
    pressures: Vec<u32>,
    shard_counts: Vec<u32>,
    base: SimConfig,
    jobs: usize,
    engine: Engine,
}

impl<T: EventSource + Sync> ReplayMatrix<'_, T> {
    /// Sets the granularity axis (default: `[Superblock]`).
    #[must_use]
    pub fn granularities(mut self, gs: &[Granularity]) -> Self {
        self.granularities = gs.to_vec();
        self
    }

    /// Sets the pressure axis (default: `[2]`).
    #[must_use]
    pub fn pressures(mut self, ps: &[u32]) -> Self {
        self.pressures = ps.to_vec();
        self
    }

    /// Sets the shard-count axis (default: `[1]`).
    #[must_use]
    pub fn shard_counts(mut self, ns: &[u32]) -> Self {
        self.shard_counts = ns.to_vec();
        self
    }

    /// Base simulator configuration for every cell (granularity and
    /// capacity are overridden per cell).
    #[must_use]
    pub fn config(mut self, base: &SimConfig) -> Self {
        self.base = *base;
        self
    }

    /// Worker threads (default 1; see [`crate::sweep::resolve_jobs`]
    /// for the `--jobs`/`CCE_JOBS` precedence helper).
    #[must_use]
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }

    /// Selects the simulation engine (default [`Engine::Naive`]).
    /// [`Engine::Ladder`] fuses every unsharded cell of a trace into
    /// one single-pass replay (DESIGN.md §14) with byte-identical
    /// results; sharded cells always run on the per-cell oracle.
    #[must_use]
    pub fn engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Runs every cell and returns results in plan order.
    ///
    /// # Errors
    ///
    /// The error of the lowest-indexed failing cell — independent of
    /// scheduling — or [`SimError::Worker`] if a worker thread died.
    pub fn run(self) -> Result<Vec<SweepPoint>, SimError> {
        run_matrix(
            self.traces,
            &self.granularities,
            &self.pressures,
            &self.shard_counts,
            &self.base,
            self.jobs,
            self.engine,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cce_core::{FineFifo, Granularity};
    use cce_dbt::TraceLog;
    use cce_workloads::catalog;

    fn trace() -> TraceLog {
        catalog::by_name("gzip").unwrap().trace(0.1, 7)
    }

    #[test]
    fn solo_defaults_replay_the_trace() {
        let t = trace();
        let r = Replay::new(&t).run().unwrap();
        assert_eq!(r.tenant_count(), 1);
        assert_eq!(r.solo().stats.accesses, t.events.len() as u64);
    }

    #[test]
    fn shared_trace_and_in_memory_agree() {
        let t = trace();
        let shared = SharedTrace::from_log(&t);
        let a = Replay::new(&t).pressure(3).run().unwrap().into_solo();
        let b = Replay::new(&shared).pressure(3).run().unwrap().into_solo();
        assert_eq!(a, b);
    }

    #[test]
    fn zero_pressure_is_a_config_error_not_a_panic() {
        let t = trace();
        assert!(matches!(
            Replay::new(&t).pressure(0).run(),
            Err(SimError::Config(_))
        ));
    }

    #[test]
    fn session_override_with_tenants_is_rejected() {
        let t = trace();
        let cache = CodeCache::new(Box::new(FineFifo::new(8192).unwrap()));
        let err = Replay::new(&t)
            .session(cache, "FIFO")
            .tenants(2)
            .run()
            .unwrap_err();
        assert!(matches!(err, SimError::Config(_)));
    }

    #[test]
    fn custom_session_carries_its_label() {
        let t = trace();
        let cache = CodeCache::new(Box::new(FineFifo::new(8192).unwrap()));
        let r = Replay::new(&t).session(cache, "FIFO").run().unwrap();
        assert_eq!(r.solo().granularity_label, "FIFO");
    }

    #[test]
    fn tenants_replay_identically_without_an_arbiter() {
        let t = trace();
        let report = Replay::new(&t)
            .granularity(Granularity::units(4))
            .capacity(16 * 1024)
            .shards(2)
            .tenants(3)
            .threads(2)
            .run()
            .unwrap();
        assert_eq!(report.tenant_count(), 3);
        let all: Vec<_> = report.tenants().collect();
        assert!(all.iter().all(|r| *r == all[0]));
        // And each equals the solo sharded run at the same geometry.
        let solo = Replay::new(&t)
            .granularity(Granularity::units(4))
            .capacity(16 * 1024)
            .shards(2)
            .run()
            .unwrap()
            .into_solo();
        assert_eq!(*all[0], solo);
    }

    #[test]
    fn matrix_matches_single_cell_replays() {
        let traces = vec![trace()];
        let gs = [Granularity::Flush, Granularity::Superblock];
        let points = Replay::matrix(&traces)
            .granularities(&gs)
            .pressures(&[2, 6])
            .jobs(2)
            .run()
            .unwrap();
        assert_eq!(points.len(), 4);
        for p in &points {
            let solo = Replay::new(&traces[p.cell.trace])
                .granularity(p.cell.granularity)
                .pressure(p.cell.pressure)
                .shards(p.cell.shards)
                .run()
                .unwrap()
                .into_solo();
            // The matrix keeps the *requested* granularity label; the
            // underlying stats must agree exactly.
            assert_eq!(p.result.stats, solo.stats);
            assert_eq!(p.result.capacity, solo.capacity);
        }
    }
}
