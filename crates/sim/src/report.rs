//! Plain-text and CSV tables for the experiment regenerators.

use std::fmt;

/// A simple column-aligned table.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TextTable {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with a title and column headers.
    #[must_use]
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(title: &str, headers: I) -> TextTable {
        TextTable {
            title: title.to_owned(),
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row's length differs from the header count.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width must match the header"
        );
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as CSV (header row first, comma-separated, quotes around
    /// cells containing commas).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let quote = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_owned()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| quote(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for r in &self.rows {
            out.push_str(&r.iter().map(|c| quote(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        writeln!(f, "## {}", self.title)?;
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for i in 0..cols {
                write!(f, " {:width$} |", cells[i], width = widths[i])?;
            }
            writeln!(f)
        };
        line(f, &self.headers)?;
        write!(f, "|")?;
        for w in &widths {
            write!(f, "{:-<width$}|", "", width = w + 2)?;
        }
        writeln!(f)?;
        for r in &self.rows {
            line(f, r)?;
        }
        Ok(())
    }
}

/// Formats a fraction as a percentage with two decimals (e.g. `12.34%`).
#[must_use]
pub fn pct(fraction: f64) -> String {
    format!("{:.2}%", fraction * 100.0)
}

/// Formats a float with two decimals.
#[must_use]
pub fn f2(value: f64) -> String {
    format!("{value:.2}")
}

/// Formats a ratio relative to a baseline as a percentage (the paper's
/// "relative" figures), e.g. `relative(0.5)` → `50.0%`.
#[must_use]
pub fn relative(ratio: f64) -> String {
    format!("{:.1}%", ratio * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_markdownish() {
        let mut t = TextTable::new("Demo", ["name", "value"]);
        t.row(["gzip", "301"]);
        t.row(["word", "18043"]);
        let s = t.to_string();
        assert!(s.contains("## Demo"));
        assert!(s.contains("| gzip"));
        assert!(s.contains("| 18043 |"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = TextTable::new("Demo", ["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn csv_quotes_commas() {
        let mut t = TextTable::new("x", ["a", "b"]);
        t.row(["hello, world", "pl\"ain"]);
        let csv = t.to_csv();
        assert!(csv.starts_with("a,b\n"));
        assert!(csv.contains("\"hello, world\""));
        assert!(csv.contains("\"pl\"\"ain\""));
    }

    #[test]
    fn formatters() {
        assert_eq!(pct(0.1234), "12.34%");
        assert_eq!(f2(4.5678), "4.57");
        assert_eq!(relative(1.5), "150.0%");
    }
}
