//! Multi-seed robustness analysis.
//!
//! The paper runs each benchmark once (real executions are deterministic
//! enough); our workloads are *sampled*, so any headline number should be
//! shown to be stable across trace seeds. [`over_seeds`] evaluates a
//! metric at several seeds and returns a [`Series`] with a normal-theory
//! 95% confidence interval — the experiment binaries and tests use it to
//! demonstrate that the reported shapes are not seed artifacts.

/// Summary statistics of a sampled metric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Series {
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator).
    pub stddev: f64,
    /// Lower bound of the normal-approximation 95% CI of the mean.
    pub ci95_low: f64,
    /// Upper bound of the normal-approximation 95% CI of the mean.
    pub ci95_high: f64,
    /// Number of samples.
    pub n: usize,
}

impl Series {
    /// True if `value` lies inside the 95% CI.
    #[must_use]
    pub fn contains(&self, value: f64) -> bool {
        (self.ci95_low..=self.ci95_high).contains(&value)
    }

    /// Relative CI half-width (0 for a single sample or zero mean).
    #[must_use]
    pub fn relative_halfwidth(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            ((self.ci95_high - self.ci95_low) / 2.0 / self.mean).abs()
        }
    }
}

/// Summarizes raw samples. Returns `None` when `samples` is empty.
#[must_use]
pub fn summarize(samples: &[f64]) -> Option<Series> {
    let n = samples.len();
    if n == 0 {
        return None;
    }
    let mean = samples.iter().sum::<f64>() / n as f64;
    let stddev = if n < 2 {
        0.0
    } else {
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n as f64 - 1.0);
        var.sqrt()
    };
    let half = 1.96 * stddev / (n as f64).sqrt();
    Some(Series {
        mean,
        stddev,
        ci95_low: mean - half,
        ci95_high: mean + half,
        n,
    })
}

/// Evaluates `metric` at each seed and summarizes the results.
///
/// # Example
///
/// ```
/// use cce_sim::seeds::over_seeds;
/// // A metric that barely depends on the seed.
/// let series = over_seeds(0..10, |seed| 5.0 + (seed % 2) as f64 * 0.01);
/// assert!(series.unwrap().contains(5.005));
/// ```
pub fn over_seeds<I, F>(seeds: I, mut metric: F) -> Option<Series>
where
    I: IntoIterator<Item = u64>,
    F: FnMut(u64) -> f64,
{
    let samples: Vec<f64> = seeds.into_iter().map(&mut metric).collect();
    summarize(&samples)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summarize_basic_statistics() {
        let s = summarize(&[2.0, 4.0, 6.0, 8.0]).unwrap();
        assert_eq!(s.n, 4);
        assert!((s.mean - 5.0).abs() < 1e-12);
        // Sample stddev of 2,4,6,8 = sqrt(20/3).
        assert!((s.stddev - (20.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert!(s.ci95_low < 5.0 && 5.0 < s.ci95_high);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        assert!(summarize(&[]).is_none());
        let s = summarize(&[7.0]).unwrap();
        assert_eq!(s.mean, 7.0);
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.ci95_low, 7.0);
        assert_eq!(s.ci95_high, 7.0);
        assert!(s.contains(7.0));
    }

    #[test]
    fn constant_metric_has_zero_width() {
        let s = over_seeds(0..20, |_| 3.25).unwrap();
        assert_eq!(s.relative_halfwidth(), 0.0);
        assert!(s.contains(3.25));
        assert!(!s.contains(3.26));
    }

    #[test]
    fn miss_rates_are_stable_across_seeds() {
        use crate::pressure::simulate_at_pressure;
        use crate::simulator::SimConfig;
        use cce_core::Granularity;
        // A mid-size benchmark: tiny traces (mcf at low scale) are
        // legitimately seed-sensitive, larger ones must not be.
        let model = cce_workloads::by_name("parser").unwrap();
        let series = over_seeds(0..6, |seed| {
            let trace = model.trace(0.2, seed);
            simulate_at_pressure(&trace, Granularity::units(8), 4, &SimConfig::default())
                .unwrap()
                .stats
                .miss_rate()
        })
        .unwrap();
        assert!(series.mean > 0.0);
        assert!(
            series.relative_halfwidth() < 0.5,
            "miss rate too seed-sensitive: {series:?}"
        );
    }
}
