//! Trace-driven code-cache simulation.
//!
//! The simulator replays a [`TraceLog`] — from the real DBT engine or
//! from the statistical workload models — against a fresh cache at one
//! (granularity, capacity) point, charging the [`OverheadModel`] for every
//! miss, eviction invocation and unlink operation. This is the paper's
//! code-cache simulator (§4.1) with the overhead penalties of §4.4/§5.3
//! built in. Callers configure and launch a replay through the
//! [`crate::replay::Replay`] builder; this module holds the engine it
//! drives.
//!
//! Replay is **chunk-oriented**: the core loop ([`simulate_event_chunks`])
//! consumes any fallible iterator of event slices, so the same code path
//! serves an in-memory [`TraceLog`] (one big chunk), a decoded-once
//! [`SharedTrace`] shared across sweep cells, a streaming
//! [`TraceReader`] whose decoder thread overlaps file I/O with the
//! simulation (DESIGN.md §11), and the serve-mode session loop that
//! applies framed events as they arrive off the wire (DESIGN.md §13).
//! The periodic link-graph census is placed by *total* event count —
//! carried in the binary header — so every ingest path produces
//! bit-identical [`SimResult`]s at any chunk size.

use crate::overhead::OverheadModel;
use cce_core::{CacheError, CacheSession, Granularity, InsertRequest, SuperblockId};
use cce_dbt::{SharedTrace, SuperblockInfo, TraceEvent, TraceLog, TraceReader};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Simulator configuration for one cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Eviction granularity of the simulated cache.
    pub granularity: Granularity,
    /// Capacity in bytes (the paper uses `maxCache / pressure`).
    pub capacity: u64,
    /// Cost models to charge.
    pub overhead: OverheadModel,
    /// Whether superblock chaining is simulated (links form on direct
    /// transitions when both endpoints are resident).
    pub chaining: bool,
    /// Whether unlink penalties (Eq. 4) are charged — §4.4 runs without
    /// them (Figures 10–11), §5.3 with them (Figures 14–15).
    pub charge_unlinks: bool,
}

impl Default for SimConfig {
    fn default() -> SimConfig {
        SimConfig {
            granularity: Granularity::Superblock,
            capacity: 1 << 20,
            overhead: OverheadModel::cgo2004(),
            chaining: true,
            charge_unlinks: true,
        }
    }
}

/// Errors from a replay or serve run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The cache geometry was invalid.
    Cache(CacheError),
    /// The requested run was contradictory before any events flowed
    /// (zero pressure, a custom session combined with tenants, …).
    Config(&'static str),
    /// The trace references a superblock missing from its registry.
    UnknownSuperblock(SuperblockId),
    /// The trace has no events.
    EmptyTrace,
    /// A streaming event source failed mid-replay (I/O, corruption, or
    /// an event count that contradicts its header).
    Ingest(String),
    /// A sweep worker thread died before reporting its cells (it
    /// panicked, or a claimed slot was never filled). The payload is
    /// the panic message when one could be recovered.
    Worker(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Cache(e) => write!(f, "cache error: {e}"),
            SimError::Config(what) => write!(f, "invalid replay configuration: {what}"),
            SimError::UnknownSuperblock(id) => {
                write!(f, "trace references unregistered superblock {id}")
            }
            SimError::EmptyTrace => write!(f, "trace has no access events"),
            SimError::Ingest(what) => write!(f, "trace ingest failed: {what}"),
            SimError::Worker(what) => write!(f, "sweep worker failed: {what}"),
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Cache(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CacheError> for SimError {
    fn from(e: CacheError) -> SimError {
        SimError::Cache(e)
    }
}

/// The outcome of simulating one trace at one configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// Workload name (from the trace).
    pub name: String,
    /// Granularity simulated.
    pub granularity_label: String,
    /// Capacity in bytes.
    pub capacity: u64,
    /// Full cache statistics.
    pub stats: cce_core::CacheStats,
    /// Σ Eq. 3 over misses, in instructions.
    pub miss_overhead: f64,
    /// Σ Eq. 2 over eviction invocations, in instructions.
    pub eviction_overhead: f64,
    /// Σ Eq. 4 over unlink operations, in instructions (0 when not
    /// charged).
    pub unlink_overhead: f64,
    /// Superblocks that could not fit the eviction granule and were
    /// simulated as permanently uncached (normally 0).
    pub uncacheable: u64,
    /// Intra-unit links counted across periodic live-graph censuses.
    pub census_intra_links: u64,
    /// Inter-unit links counted across periodic live-graph censuses.
    pub census_inter_links: u64,
}

impl SimResult {
    /// Total management overhead in instructions.
    #[must_use]
    pub fn total_overhead(&self) -> f64 {
        self.miss_overhead + self.eviction_overhead + self.unlink_overhead
    }

    /// Management overhead per trace access, in instructions.
    #[must_use]
    pub fn overhead_per_access(&self) -> f64 {
        if self.stats.accesses == 0 {
            0.0
        } else {
            self.total_overhead() / self.stats.accesses as f64
        }
    }

    /// Fraction of live links spanning unit boundaries, averaged over the
    /// simulation's periodic link-graph censuses (Figure 13's metric).
    #[must_use]
    pub fn census_inter_fraction(&self) -> f64 {
        let total = self.census_intra_links + self.census_inter_links;
        if total == 0 {
            0.0
        } else {
            self.census_inter_links as f64 / total as f64
        }
    }
}

/// A replayable supply of trace events: a registry plus the event stream
/// in slice-sized chunks. Implemented by the in-memory [`TraceLog`] (one
/// chunk) and by [`SharedTrace`] (the decode-once, `Arc`-shared chunks a
/// sweep replays across many cells). Streaming [`TraceReader`]s are not
/// `EventSource`s — their chunks are fallible and consumed once — and go
/// through [`simulate_reader_session`] instead.
pub trait EventSource {
    /// Workload name for the result.
    fn source_name(&self) -> &str;
    /// The superblock registry (sizes for every id the events mention).
    fn registry(&self) -> &[SuperblockInfo];
    /// Total events across all chunks (drives census placement).
    fn event_count(&self) -> u64;
    /// The event stream, in order, in chunks.
    fn event_chunks(&self) -> Box<dyn Iterator<Item = &[TraceEvent]> + '_>;
}

impl EventSource for TraceLog {
    fn source_name(&self) -> &str {
        &self.name
    }
    fn registry(&self) -> &[SuperblockInfo] {
        &self.superblocks
    }
    fn event_count(&self) -> u64 {
        self.events.len() as u64
    }
    fn event_chunks(&self) -> Box<dyn Iterator<Item = &[TraceEvent]> + '_> {
        Box::new(std::iter::once(self.events.as_slice()))
    }
}

impl EventSource for SharedTrace {
    fn source_name(&self) -> &str {
        &self.name
    }
    fn registry(&self) -> &[SuperblockInfo] {
        &self.superblocks
    }
    fn event_count(&self) -> u64 {
        self.event_count
    }
    fn event_chunks(&self) -> Box<dyn Iterator<Item = &[TraceEvent]> + '_> {
        Box::new(self.chunks.iter().map(|c| &**c))
    }
}

/// Replays any [`EventSource`] against an arbitrary pre-built
/// [`CacheSession`] — a bare [`cce_core::CodeCache`], a
/// [`cce_core::ShardedCache`], a boxed custom policy. The `label` names
/// the session in the result; `config.granularity` and `config.capacity`
/// are advisory here (the session brings its own geometry). Most callers
/// reach this through [`crate::replay::Replay`].
///
/// # Errors
///
/// Returns [`SimError::Cache`] for invalid geometry,
/// [`SimError::UnknownSuperblock`] for a malformed trace, and
/// [`SimError::EmptyTrace`] if there is nothing to replay.
pub fn simulate_source_session<T: EventSource + ?Sized, S: CacheSession>(
    source: &T,
    session: S,
    label: String,
    config: &SimConfig,
) -> Result<SimResult, SimError> {
    simulate_event_chunks(
        source.source_name(),
        source.registry(),
        source.event_count(),
        source.event_chunks().map(Ok::<_, std::convert::Infallible>),
        session,
        label,
        config,
    )
}

/// Streams a binary trace straight from its reader against an arbitrary
/// pre-built [`CacheSession`]: the reader's decoder thread stays one or
/// two chunks ahead, so file I/O and varint decode overlap with the cache
/// simulation and peak event memory is O(chunk), never O(trace).
///
/// The reader is consumed to its end (or first error); the census
/// schedule comes from the header's event count, so the result is
/// bit-identical to replaying the same trace in memory. Most callers
/// reach this through [`crate::replay::Replay::stream`].
///
/// # Errors
///
/// Same conditions as [`simulate_source_session`], plus
/// [`SimError::Ingest`] if the stream fails mid-replay or delivers a
/// different number of events than its header promised.
pub fn simulate_reader_session<S: CacheSession>(
    reader: &mut TraceReader,
    session: S,
    label: String,
    config: &SimConfig,
) -> Result<SimResult, SimError> {
    let name = reader.name().to_owned();
    let registry = reader.superblocks_shared();
    let event_count = reader.event_count();
    let chunks = std::iter::from_fn(|| reader.next_chunk());
    simulate_event_chunks(
        &name,
        &registry,
        event_count,
        chunks,
        session,
        label,
        config,
    )
}

/// The chunked replay engine every other entry point funnels into: an
/// event stream arrives as a fallible iterator of chunks, with the total
/// `event_count` known up front (it fixes the link-census period, so the
/// result does not depend on how the stream happens to be chunked).
///
/// # Errors
///
/// Same conditions as [`simulate_source_session`]; a failed chunk or an
/// event count that contradicts `event_count` becomes
/// [`SimError::Ingest`].
pub fn simulate_event_chunks<S, I, C, E>(
    name: &str,
    registry: &[SuperblockInfo],
    event_count: u64,
    chunks: I,
    session: S,
    label: String,
    config: &SimConfig,
) -> Result<SimResult, SimError>
where
    S: CacheSession,
    I: IntoIterator<Item = Result<C, E>>,
    C: AsRef<[TraceEvent]>,
    E: fmt::Display,
{
    let mut driver = SimDriver::new(name, registry, event_count, session, label, config)?;
    for chunk in chunks {
        let chunk = chunk.map_err(|e| SimError::Ingest(e.to_string()))?;
        driver.feed(chunk.as_ref())?;
    }
    driver.finish()
}

/// Incremental replay: the per-event core that [`simulate_event_chunks`]
/// (and through it every replay entry point) runs, factored out so
/// concurrent runners can feed one tenant's stream in arbitrary slices
/// interleaved with other tenants. Feeding the same events through one
/// `SimDriver` yields a bit-identical [`SimResult`] regardless of how
/// the stream is sliced: the census period is fixed by the up-front
/// total `event_count`, never by slice boundaries.
#[derive(Debug)]
pub struct SimDriver<S: CacheSession> {
    session: S,
    name: String,
    label: String,
    config: SimConfig,
    sizes: HashMap<SuperblockId, u32>,
    event_count: u64,
    census_every: usize,
    event_idx: usize,
    miss_overhead: f64,
    eviction_overhead: f64,
    unlink_overhead: f64,
    uncacheable: u64,
    census_intra: u64,
    census_inter: u64,
}

impl<S: CacheSession> SimDriver<S> {
    /// Prepares a replay of `event_count` events against `session`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EmptyTrace`] when `event_count` is zero.
    pub fn new(
        name: &str,
        registry: &[SuperblockInfo],
        event_count: u64,
        session: S,
        label: String,
        config: &SimConfig,
    ) -> Result<SimDriver<S>, SimError> {
        if event_count == 0 {
            return Err(SimError::EmptyTrace);
        }
        Ok(SimDriver {
            session,
            name: name.to_owned(),
            label,
            config: *config,
            sizes: registry.iter().map(|s| (s.id, s.size)).collect(),
            event_count,
            // Sample the live link graph ~64 times over the run. The
            // period is a function of the *total* count, never of how
            // the stream is chunked or sliced.
            census_every: (usize::try_from(event_count).unwrap_or(usize::MAX) / 64).max(1),
            event_idx: 0,
            miss_overhead: 0.0,
            eviction_overhead: 0.0,
            unlink_overhead: 0.0,
            uncacheable: 0,
            census_intra: 0,
            census_inter: 0,
        })
    }

    /// Replays one slice of the event stream.
    ///
    /// # Errors
    ///
    /// Same conditions as [`simulate_source_session`].
    pub fn feed(&mut self, events: &[TraceEvent]) -> Result<(), SimError> {
        for ev in events {
            let TraceEvent::Access { id, direct_from } = *ev;
            let size = *self.sizes.get(&id).ok_or(SimError::UnknownSuperblock(id))?;
            // Placement hint: the chain source of this direct transition,
            // if still resident (placement-aware organizations co-locate).
            let partner = direct_from.filter(|f| self.session.is_resident(*f));
            // One call looks up and, on a miss, inserts. Eqs. 2 and 4 are
            // linear, so the settled aggregate counts charge exactly what
            // walking per-eviction reports used to.
            match self
                .session
                .access_or_insert_quiet(InsertRequest::new(id, size).with_hint(partner))
            {
                Ok(outcome) => {
                    if let Some(summary) = outcome.inserted {
                        self.miss_overhead += self.config.overhead.miss_cost(u64::from(size));
                        self.eviction_overhead += self.config.overhead.eviction_cost_total(
                            u64::from(summary.evictions),
                            summary.bytes_evicted,
                        );
                        if self.config.charge_unlinks {
                            self.unlink_overhead += self.config.overhead.unlink_cost_total(
                                u64::from(summary.unlink_operations),
                                summary.links_unlinked,
                            );
                        }
                    }
                }
                // The miss was still recorded (and is still charged); the
                // block is simulated as permanently uncached.
                Err(CacheError::BlockTooLarge { .. }) => {
                    self.miss_overhead += self.config.overhead.miss_cost(u64::from(size));
                    self.uncacheable += 1;
                }
                Err(e) => return Err(SimError::Cache(e)),
            }
            if self.config.chaining {
                if let Some(from) = direct_from {
                    if self.session.is_resident(from) && self.session.is_resident(id) {
                        // Both endpoints were just checked resident, so
                        // this cannot fail for the built-in sessions —
                        // but a custom session may disagree, and that
                        // deserves an error, not a panic.
                        self.session.link(from, id).map_err(SimError::Cache)?;
                    }
                }
            }
            if self.event_idx % self.census_every == self.census_every - 1 {
                let (intra, inter) = self.session.link_census();
                self.census_intra += intra;
                self.census_inter += inter;
            }
            self.event_idx += 1;
        }
        Ok(())
    }

    /// Events fed so far.
    #[must_use]
    pub fn events_fed(&self) -> u64 {
        self.event_idx as u64
    }

    /// Finishes the replay and assembles the result.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Ingest`] if the number of fed events differs
    /// from the `event_count` promised at construction.
    pub fn finish(self) -> Result<SimResult, SimError> {
        if self.event_idx as u64 != self.event_count {
            return Err(SimError::Ingest(format!(
                "event stream delivered {} events but promised {}",
                self.event_idx, self.event_count
            )));
        }
        Ok(SimResult {
            name: self.name,
            granularity_label: self.label,
            capacity: self.session.capacity(),
            stats: self.session.stats_snapshot(),
            miss_overhead: self.miss_overhead,
            eviction_overhead: self.eviction_overhead,
            unlink_overhead: self.unlink_overhead,
            uncacheable: self.uncacheable,
            census_intra_links: self.census_intra,
            census_inter_links: self.census_inter,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replay::Replay;
    use cce_core::ShardedCache;
    use cce_dbt::SuperblockInfo;
    use cce_tinyvm::program::Pc;

    fn sb(n: u64) -> SuperblockId {
        SuperblockId(n)
    }

    /// The engine under test, reached the way callers reach it.
    fn simulate(trace: &TraceLog, config: &SimConfig) -> Result<SimResult, SimError> {
        Replay::new(trace)
            .config(config)
            .run()
            .map(crate::replay::ReplayReport::into_solo)
    }

    /// Always builds a real [`ShardedCache`], even for one shard, so the
    /// transparency assertion below stays meaningful.
    fn simulate_sharded(
        trace: &TraceLog,
        config: &SimConfig,
        shards: u32,
    ) -> Result<SimResult, SimError> {
        let cache = ShardedCache::with_granularity(config.granularity, config.capacity, shards)?;
        Replay::new(trace)
            .config(config)
            .session(cache, config.granularity.label())
            .run()
            .map(crate::replay::ReplayReport::into_solo)
    }

    /// A trace of `n` superblocks of equal `size`, accessed round-robin
    /// `laps` times with direct transitions.
    fn round_robin(n: u64, size: u32, laps: u64) -> TraceLog {
        let mut log = TraceLog::new("rr");
        for i in 0..n {
            log.record_superblock(SuperblockInfo {
                id: sb(i),
                head_pc: Pc(i * 1000),
                size,
                guest_blocks: 4,
                exits: 2,
            });
        }
        let mut prev: Option<SuperblockId> = None;
        for _ in 0..laps {
            for i in 0..n {
                log.record_access(sb(i), prev);
                prev = Some(sb(i));
            }
        }
        log
    }

    #[test]
    fn fits_entirely_only_cold_misses() {
        let trace = round_robin(10, 100, 5);
        let cfg = SimConfig {
            capacity: 2000,
            ..SimConfig::default()
        };
        let r = simulate(&trace, &cfg).unwrap();
        assert_eq!(r.stats.misses, 10);
        assert_eq!(r.stats.capacity_misses, 0);
        assert_eq!(r.stats.eviction_invocations, 0);
        assert_eq!(r.eviction_overhead, 0.0);
        assert!(r.miss_overhead > 0.0);
    }

    #[test]
    fn cyclic_scan_thrashes_fifo() {
        // Classic FIFO pathology: a cyclic scan over a working set larger
        // than the cache misses on every access.
        let trace = round_robin(10, 100, 5);
        let cfg = SimConfig {
            capacity: 500, // holds 5 of 10
            ..SimConfig::default()
        };
        let r = simulate(&trace, &cfg).unwrap();
        assert_eq!(r.stats.miss_rate(), 1.0);
    }

    #[test]
    fn cyclic_scan_defeats_every_granularity_equally() {
        // A pure cyclic scan over twice the cache is the degenerate case
        // where no FIFO-family granularity can help: each block's reuse
        // distance exceeds any policy's retention. Both extremes miss
        // 100% — the interesting differences need real locality (covered
        // by the pressure-sweep tests).
        let trace = round_robin(10, 100, 20);
        for g in [
            Granularity::Flush,
            Granularity::units(2),
            Granularity::Superblock,
        ] {
            let r = simulate(
                &trace,
                &SimConfig {
                    granularity: g,
                    capacity: 500,
                    ..SimConfig::default()
                },
            )
            .unwrap();
            assert_eq!(r.stats.miss_rate(), 1.0, "{g}");
        }
    }

    #[test]
    fn fine_fifo_keeps_a_hot_pair_alive_better_than_flush() {
        // Two hot blocks re-touched between streaming insertions: the
        // fine-grained FIFO re-inserts them right after each eviction and
        // keeps most touches hits; FLUSH periodically wipes them with
        // everything else.
        let mut log = TraceLog::new("hotpair");
        let hot_a = sb(1000);
        let hot_b = sb(1001);
        for (i, id) in [(0u64, hot_a), (1, hot_b)] {
            let _ = i;
            log.record_superblock(SuperblockInfo {
                id,
                head_pc: Pc(id.0 * 100),
                size: 100,
                guest_blocks: 2,
                exits: 2,
            });
        }
        for i in 0..300u64 {
            log.record_superblock(SuperblockInfo {
                id: sb(i),
                head_pc: Pc(i * 100),
                size: 100,
                guest_blocks: 2,
                exits: 2,
            });
        }
        let mut prev = None;
        for i in 0..300u64 {
            for id in [hot_a, hot_b, hot_a, hot_b, sb(i)] {
                log.record_access(id, prev);
                prev = Some(id);
            }
        }
        let run = |g| {
            simulate(
                &log,
                &SimConfig {
                    granularity: g,
                    capacity: 1000,
                    ..SimConfig::default()
                },
            )
            .unwrap()
            .stats
            .miss_rate()
        };
        let fine = run(Granularity::Superblock);
        let flush = run(Granularity::Flush);
        assert!(fine < flush, "fine {fine} vs flush {flush}");
    }

    #[test]
    fn unlink_charges_follow_config() {
        let trace = round_robin(10, 100, 10);
        let base = SimConfig {
            granularity: Granularity::units(2),
            capacity: 500,
            ..SimConfig::default()
        };
        let with = simulate(&trace, &base).unwrap();
        let without = simulate(
            &trace,
            &SimConfig {
                charge_unlinks: false,
                ..base
            },
        )
        .unwrap();
        assert_eq!(without.unlink_overhead, 0.0);
        assert_eq!(
            with.stats, without.stats,
            "charging must not change behaviour"
        );
        assert!(with.unlink_overhead >= 0.0);
    }

    #[test]
    fn chaining_off_creates_no_links() {
        let trace = round_robin(5, 100, 5);
        let r = simulate(
            &trace,
            &SimConfig {
                capacity: 1000,
                chaining: false,
                ..SimConfig::default()
            },
        )
        .unwrap();
        assert_eq!(r.stats.links_created, 0);
    }

    #[test]
    fn oversized_block_is_reported_not_fatal() {
        let mut trace = round_robin(2, 100, 2);
        trace.record_superblock(SuperblockInfo {
            id: sb(99),
            head_pc: Pc(99_000),
            size: 5000,
            guest_blocks: 40,
            exits: 2,
        });
        trace.record_access(sb(99), None);
        trace.record_access(sb(99), None);
        let r = simulate(
            &trace,
            &SimConfig {
                capacity: 1000,
                ..SimConfig::default()
            },
        )
        .unwrap();
        assert_eq!(r.uncacheable, 2);
    }

    #[test]
    fn empty_trace_is_an_error() {
        let log = TraceLog::new("empty");
        assert_eq!(
            simulate(&log, &SimConfig::default()).unwrap_err(),
            SimError::EmptyTrace
        );
    }

    #[test]
    fn unknown_superblock_is_an_error() {
        let mut log = TraceLog::new("bad");
        log.record_access(sb(7), None);
        assert_eq!(
            simulate(&log, &SimConfig::default()).unwrap_err(),
            SimError::UnknownSuperblock(sb(7))
        );
    }

    #[test]
    fn sharded_one_shard_reproduces_the_bare_simulation() {
        let trace = round_robin(12, 100, 8);
        for g in [
            Granularity::Flush,
            Granularity::units(4),
            Granularity::Superblock,
        ] {
            let cfg = SimConfig {
                granularity: g,
                capacity: 600,
                ..SimConfig::default()
            };
            let bare = simulate(&trace, &cfg).unwrap();
            let sharded = simulate_sharded(&trace, &cfg, 1).unwrap();
            assert_eq!(bare, sharded, "{g}: one shard must be transparent");
        }
    }

    #[test]
    fn sharding_preserves_the_access_stream() {
        let trace = round_robin(16, 100, 8);
        let cfg = SimConfig {
            capacity: 800,
            ..SimConfig::default()
        };
        let bare = simulate(&trace, &cfg).unwrap();
        for shards in [2u32, 4, 8] {
            let r = simulate_sharded(&trace, &cfg, shards).unwrap();
            assert_eq!(r.stats.accesses, bare.stats.accesses, "shards={shards}");
            assert_eq!(r.capacity, bare.capacity, "total capacity is fixed");
            assert_eq!(r.stats.accesses, r.stats.hits + r.stats.misses);
            // Determinism: the sharded replay is a pure function.
            assert_eq!(r, simulate_sharded(&trace, &cfg, shards).unwrap());
        }
    }

    #[test]
    fn overhead_per_access_is_total_over_accesses() {
        let trace = round_robin(10, 100, 10);
        let r = simulate(
            &trace,
            &SimConfig {
                capacity: 500,
                ..SimConfig::default()
            },
        )
        .unwrap();
        let expect = r.total_overhead() / r.stats.accesses as f64;
        assert!((r.overhead_per_access() - expect).abs() < 1e-9);
    }
}
