//! Deterministic threaded sweep runner.
//!
//! A full study is a `(benchmark × shard-count × granularity ×
//! pressure)` grid of independent simulator cells — embarrassingly
//! parallel, but figure regeneration demands *byte-identical* output run
//! to run. The runner therefore separates planning from execution:
//! [`plan`] enumerates the cells in a fixed canonical order (trace-major,
//! then shard count, then pressure, then granularity — with a single
//! shard count this is exactly the order the sequential grid loop has
//! always used), and `run_matrix` lets a scoped thread pool claim
//! cells from an atomic cursor while every worker writes its result into
//! the cell's *pre-indexed slot*. Scheduling nondeterminism affects only
//! which thread computes a cell, never where the result lands, so
//! `--jobs N` output is byte-identical to `--jobs 1`. Whole-trace sizing
//! scans ([`TraceSizing`]) are hoisted out and computed once per trace
//! per plan, not once per cell.
//!
//! Callers configure sweeps through [`crate::replay::ReplayMatrix`]
//! (built by [`crate::replay::Replay::matrix`]); this module holds the
//! planner and the worker pool it runs on.

use crate::ladder::{simulate_ladder_source, Engine, LadderCell};
use crate::pressure::{cell_config, simulate_cell_source, TraceSizing};
use crate::simulator::{EventSource, SimConfig, SimError, SimResult};
use cce_core::Granularity;
use std::sync::atomic::{AtomicUsize, Ordering};

/// One planned cell of a sweep, identified by axis indices so the cell
/// list itself stays small and `Copy`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepCell {
    /// Index into the caller's trace slice.
    pub trace: usize,
    /// Granularity to simulate.
    pub granularity: Granularity,
    /// Cache-pressure factor `n` (capacity = `maxCache / n`).
    pub pressure: u32,
    /// Shard count (1 = a bare cache; >1 = a `ShardedCache` splitting
    /// the same total capacity).
    pub shards: u32,
}

/// One finished cell: the plan entry plus its simulation outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// The cell that was simulated.
    pub cell: SweepCell,
    /// The simulation outcome.
    pub result: SimResult,
}

/// Enumerates every `(trace, shards, pressure, granularity)` cell in
/// canonical order. This order is the contract: [`run_matrix`] returns
/// results in exactly this sequence regardless of worker count. With
/// `shard_counts == [1]` the sequence is identical to the historical
/// `(trace, pressure, granularity)` order.
#[must_use]
pub fn plan(
    trace_count: usize,
    granularities: &[Granularity],
    pressures: &[u32],
    shard_counts: &[u32],
) -> Vec<SweepCell> {
    let mut cells = Vec::with_capacity(
        trace_count * granularities.len() * pressures.len() * shard_counts.len(),
    );
    for trace in 0..trace_count {
        for &shards in shard_counts {
            for &pressure in pressures {
                for &granularity in granularities {
                    cells.push(SweepCell {
                        trace,
                        granularity,
                        pressure,
                        shards,
                    });
                }
            }
        }
    }
    cells
}

/// Resolves the worker count: an explicit `--jobs` flag wins, then the
/// `CCE_JOBS` environment variable, then the machine's available
/// parallelism. Zero or unparsable values are treated as unset.
#[must_use]
pub fn resolve_jobs(flag: Option<usize>) -> usize {
    jobs_from(flag, std::env::var("CCE_JOBS").ok().as_deref())
}

/// The pure core of [`resolve_jobs`], separated so the precedence chain
/// is testable without mutating process environment.
#[must_use]
pub fn jobs_from(flag: Option<usize>, env: Option<&str>) -> usize {
    flag.filter(|&n| n > 0)
        .or_else(|| env.and_then(|s| s.trim().parse().ok()).filter(|&n| n > 0))
        .unwrap_or_else(|| {
            // cce-analyze: allow(nondet-taint): job-count fallback only; per-job results are merged in config order
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        })
}

/// Runs every cell of the `(traces × shard-counts × granularities ×
/// pressures)` grid across `jobs` scoped worker threads and returns the
/// results in [`plan`] order. Any `Sync` [`EventSource`] works — an
/// in-memory [`cce_dbt::TraceLog`] or a decode-once
/// [`cce_dbt::SharedTrace`] whose `Arc`'d chunks every cell replays
/// without copying.
///
/// Workers claim cells from a shared atomic cursor (dynamic load
/// balancing — big benchmarks don't serialize behind small ones) and
/// each returns `(slot index, result)` pairs that are written back into
/// a pre-indexed result vector after the scope joins. The output is
/// therefore a pure function of the inputs, independent of `jobs`.
/// Per-trace [`TraceSizing`] summaries are computed once up front, so
/// adding shard counts never multiplies whole-trace scans.
///
/// When `engine` is [`Engine::Ladder`], all unsharded cells of one
/// trace become a single work item simulated in one pass by
/// [`simulate_ladder_source`]; sharded cells (each shard is its own
/// eviction domain) stay on the per-cell oracle. Either way every
/// result lands in its plan slot, so the output — including its byte
/// identity across `jobs` counts — is unchanged.
///
/// # Errors
///
/// If any cell fails, returns the error of the *lowest-indexed* failing
/// cell — again independent of scheduling. A worker thread that dies
/// without reporting (a simulator bug surfacing as a panic) becomes
/// [`SimError::Worker`] rather than tearing down the caller.
pub(crate) fn run_matrix<T: EventSource + Sync>(
    traces: &[T],
    granularities: &[Granularity],
    pressures: &[u32],
    shard_counts: &[u32],
    base: &SimConfig,
    jobs: usize,
    engine: Engine,
) -> Result<Vec<SweepPoint>, SimError> {
    let cells = plan(traces.len(), granularities, pressures, shard_counts);
    let sizings: Vec<TraceSizing> = traces.iter().map(TraceSizing::of_source).collect();
    let items = build_items(&cells, traces.len(), engine);
    let jobs = jobs.max(1).min(items.len().max(1));
    let cursor = AtomicUsize::new(0);

    let mut slots: Vec<Option<Result<SimResult, SimError>>> = Vec::new();
    slots.resize_with(cells.len(), || None);

    std::thread::scope(|s| {
        let handles: Vec<_> = (0..jobs)
            .map(|_| {
                s.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        match items.get(i) {
                            None => break,
                            Some(WorkItem::Cell(idx)) => {
                                let cell = cells[*idx];
                                let r = simulate_cell_source(
                                    &traces[cell.trace],
                                    sizings[cell.trace],
                                    cell.granularity,
                                    cell.pressure,
                                    cell.shards,
                                    base,
                                );
                                local.push((*idx, r));
                            }
                            Some(WorkItem::Group { trace, members }) => {
                                local.extend(run_ladder_group(
                                    &traces[*trace],
                                    sizings[*trace],
                                    &cells,
                                    members,
                                    base,
                                ));
                            }
                        }
                    }
                    local
                })
            })
            .collect();
        let mut failure: Option<String> = None;
        for h in handles {
            match h.join() {
                Ok(rows) => {
                    for (i, r) in rows {
                        slots[i] = Some(r);
                    }
                }
                Err(payload) => {
                    let msg = payload
                        .downcast_ref::<&str>()
                        .map(|s| (*s).to_owned())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "worker panicked with an opaque payload".to_owned());
                    failure.get_or_insert(msg);
                }
            }
        }
        failure
    })
    .map_or(Ok(()), |msg| Err(SimError::Worker(msg)))?;

    let mut out = Vec::with_capacity(cells.len());
    for (idx, (cell, slot)) in cells.into_iter().zip(slots).enumerate() {
        // Unreachable once no worker failed, but a lost slot must not
        // become a panic either: surface it as the same error class.
        let result = slot.ok_or_else(|| {
            SimError::Worker(format!("cell {idx} was claimed but never reported"))
        })??;
        out.push(SweepPoint { cell, result });
    }
    Ok(out)
}

/// A unit of work a sweep worker claims from the cursor.
enum WorkItem {
    /// One grid cell on the per-cell oracle engine.
    Cell(usize),
    /// Every unsharded cell of one trace, fused into a single ladder
    /// pass. `members` are plan indices (the result slots).
    Group { trace: usize, members: Vec<usize> },
}

/// Maps the planned cells onto work items for the chosen engine. Item
/// order only affects scheduling — results are slot-addressed — so
/// grouping keeps the naive path's byte-for-byte output guarantee.
fn build_items(cells: &[SweepCell], trace_count: usize, engine: Engine) -> Vec<WorkItem> {
    match engine {
        Engine::Naive => (0..cells.len()).map(WorkItem::Cell).collect(),
        Engine::Ladder => {
            let mut groups: Vec<Vec<usize>> = vec![Vec::new(); trace_count];
            let mut items = Vec::new();
            for (i, cell) in cells.iter().enumerate() {
                if cell.shards == 1 {
                    groups[cell.trace].push(i);
                } else {
                    items.push(WorkItem::Cell(i));
                }
            }
            for (trace, members) in groups.into_iter().enumerate() {
                if !members.is_empty() {
                    items.push(WorkItem::Group { trace, members });
                }
            }
            items
        }
    }
}

/// Runs one trace's fused cells through the ladder engine and labels
/// each result exactly as the oracle's cell runner would: the
/// *requested* granularity's label, the *effective* geometry.
///
/// Granularity clamping and the pressure ladder's capacity floor
/// collapse many requested cells onto the same effective `(granularity,
/// capacity)` pair — on the paper grid well over half of them. The
/// simulator is deterministic, so duplicates are simulated once and the
/// result is cloned into every requesting slot; only the per-cell label
/// differs. The oracle engine deliberately keeps paying per cell — it
/// is the baseline this shortcut is measured against.
fn run_ladder_group<T: EventSource + ?Sized>(
    source: &T,
    sizing: TraceSizing,
    cells: &[SweepCell],
    members: &[usize],
    base: &SimConfig,
) -> Vec<(usize, Result<SimResult, SimError>)> {
    let mut distinct: Vec<LadderCell> = Vec::new();
    let mut rung_of: Vec<usize> = Vec::with_capacity(members.len());
    for &i in members {
        let config = cell_config(sizing, cells[i].granularity, cells[i].pressure, 1, base);
        // The ladder takes exact capacities; apply the same truncation
        // the UnitFifo constructor applies silently.
        let capacity = match config.granularity.unit_count() {
            Some(n) => (config.capacity / u64::from(n)) * u64::from(n),
            None => config.capacity,
        };
        let rung = LadderCell {
            granularity: config.granularity,
            capacity,
        };
        match distinct.iter().position(|d| *d == rung) {
            Some(p) => rung_of.push(p),
            None => {
                rung_of.push(distinct.len());
                distinct.push(rung);
            }
        }
    }
    match simulate_ladder_source(source, &distinct, base) {
        Ok(results) => members
            .iter()
            .zip(rung_of)
            .map(|(&i, rung)| {
                let mut result = results[rung].clone();
                result.granularity_label = cells[i].granularity.label();
                (i, Ok(result))
            })
            .collect(),
        Err(err) => members.iter().map(|&i| (i, Err(err.clone()))).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pressure::sweep_trace;
    use cce_dbt::TraceLog;
    use cce_workloads::catalog;

    fn small_traces() -> Vec<TraceLog> {
        ["gzip", "mcf"]
            .iter()
            .map(|n| catalog::by_name(n).unwrap().trace(0.1, 7))
            .collect()
    }

    fn axes() -> (Vec<Granularity>, Vec<u32>) {
        (
            vec![
                Granularity::Flush,
                Granularity::units(8),
                Granularity::Superblock,
            ],
            vec![2, 6],
        )
    }

    #[test]
    fn plan_order_is_trace_major() {
        let (gs, ps) = axes();
        let cells = plan(2, &gs, &ps, &[1]);
        assert_eq!(cells.len(), 2 * 3 * 2);
        assert_eq!(
            cells[0],
            SweepCell {
                trace: 0,
                granularity: Granularity::Flush,
                pressure: 2,
                shards: 1
            }
        );
        // Granularity varies fastest, then pressure, then trace.
        assert_eq!(cells[1].granularity, Granularity::units(8));
        assert_eq!(cells[3].pressure, 6);
        assert_eq!(cells[6].trace, 1);
    }

    #[test]
    fn plan_nests_shard_counts_between_trace_and_pressure() {
        let (gs, ps) = axes();
        let cells = plan(2, &gs, &ps, &[1, 4]);
        assert_eq!(cells.len(), 2 * 2 * 3 * 2);
        // All shards=1 cells of trace 0 precede its shards=4 cells.
        assert!(cells[..6].iter().all(|c| c.trace == 0 && c.shards == 1));
        assert!(cells[6..12].iter().all(|c| c.trace == 0 && c.shards == 4));
        assert!(cells[12..18].iter().all(|c| c.trace == 1 && c.shards == 1));
    }

    #[test]
    fn jobs_precedence_flag_env_fallback() {
        assert_eq!(jobs_from(Some(3), Some("8")), 3);
        assert_eq!(jobs_from(None, Some("8")), 8);
        assert_eq!(jobs_from(None, Some(" 2 ")), 2);
        // Zero and garbage fall through to auto-detection.
        assert!(jobs_from(Some(0), None) >= 1);
        assert!(jobs_from(None, Some("0")) >= 1);
        assert!(jobs_from(None, Some("lots")) >= 1);
        assert!(jobs_from(None, None) >= 1);
    }

    #[test]
    fn sharded_matches_sequential_sweep() {
        let traces = small_traces();
        let (gs, ps) = axes();
        let base = SimConfig::default();
        let points = run_matrix(&traces, &gs, &ps, &[1], &base, 3, Engine::Naive).unwrap();

        // The sequential reference: per-trace pressure sweeps concatenated.
        let mut reference = Vec::new();
        for trace in &traces {
            reference.extend(sweep_trace(trace, &gs, &ps, &base).unwrap());
        }
        assert_eq!(points.len(), reference.len());
        for (p, r) in points.iter().zip(&reference) {
            assert_eq!(p.cell.granularity, r.granularity);
            assert_eq!(p.cell.pressure, r.pressure);
            assert_eq!(p.result, r.result);
        }
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let traces = small_traces();
        let (gs, ps) = axes();
        let base = SimConfig::default();
        let one = run_matrix(&traces, &gs, &ps, &[1], &base, 1, Engine::Naive).unwrap();
        for jobs in [2, 4, 16] {
            assert_eq!(
                one,
                run_matrix(&traces, &gs, &ps, &[1], &base, jobs, Engine::Naive).unwrap()
            );
        }
    }

    #[test]
    fn shard_axis_is_deterministic_across_worker_counts() {
        // ISSUE 4 acceptance: `--shards 4 --jobs k` byte-identical for
        // every k, preserving PR 1's determinism guarantee.
        let traces = small_traces();
        let (gs, ps) = axes();
        let base = SimConfig::default();
        let one = run_matrix(&traces, &gs, &ps, &[1, 4], &base, 1, Engine::Naive).unwrap();
        assert_eq!(one.len(), 2 * 2 * 3 * 2);
        for jobs in [2, 5, 16] {
            assert_eq!(
                one,
                run_matrix(&traces, &gs, &ps, &[1, 4], &base, jobs, Engine::Naive).unwrap()
            );
        }
        // And the shards=1 slice equals a shard-free sweep.
        let bare = run_matrix(&traces, &gs, &ps, &[1], &base, 2, Engine::Naive).unwrap();
        let n1: Vec<_> = one.iter().filter(|p| p.cell.shards == 1).cloned().collect();
        assert_eq!(n1, bare);
    }

    #[test]
    fn empty_grid_is_fine() {
        let base = SimConfig::default();
        let no_traces: &[TraceLog] = &[];
        assert_eq!(
            run_matrix(no_traces, &[], &[], &[1], &base, 4, Engine::Naive).unwrap(),
            vec![]
        );
    }

    #[test]
    fn ladder_engine_matches_the_naive_matrix() {
        let traces = small_traces();
        let (gs, ps) = axes();
        let base = SimConfig::default();
        let naive = run_matrix(&traces, &gs, &ps, &[1], &base, 2, Engine::Naive).unwrap();
        for jobs in [1, 2, 8] {
            let ladder = run_matrix(&traces, &gs, &ps, &[1], &base, jobs, Engine::Ladder).unwrap();
            assert_eq!(ladder, naive, "jobs={jobs}");
        }
    }

    #[test]
    fn ladder_engine_leaves_sharded_cells_on_the_oracle() {
        let traces = small_traces();
        let (gs, ps) = axes();
        let base = SimConfig::default();
        let naive = run_matrix(&traces, &gs, &ps, &[1, 4], &base, 2, Engine::Naive).unwrap();
        let ladder = run_matrix(&traces, &gs, &ps, &[1, 4], &base, 2, Engine::Ladder).unwrap();
        assert_eq!(ladder, naive);
    }

    /// An [`EventSource`] whose stream blows up mid-replay, standing in
    /// for a simulator bug inside a worker thread.
    struct ExplodingSource {
        registry: Vec<cce_dbt::SuperblockInfo>,
    }

    impl EventSource for ExplodingSource {
        fn source_name(&self) -> &str {
            "exploding"
        }
        fn registry(&self) -> &[cce_dbt::SuperblockInfo] {
            &self.registry
        }
        fn event_count(&self) -> u64 {
            1
        }
        fn event_chunks(&self) -> Box<dyn Iterator<Item = &[cce_dbt::TraceEvent]> + '_> {
            panic!("injected worker fault");
        }
    }

    #[test]
    fn worker_panic_surfaces_as_an_error_not_a_crash() {
        let trace = catalog::by_name("gzip").unwrap().trace(0.1, 7);
        let sources = vec![ExplodingSource {
            registry: trace.registry().to_vec(),
        }];
        let base = SimConfig::default();
        let err = run_matrix(
            &sources,
            &[Granularity::Flush],
            &[2],
            &[1],
            &base,
            2,
            Engine::Naive,
        )
        .expect_err("the injected fault must be reported");
        match err {
            SimError::Worker(msg) => assert!(msg.contains("injected worker fault"), "{msg}"),
            other => panic!("wrong error class: {other:?}"),
        }
    }
}
