//! Ladder ↔ naive conformance (DESIGN.md §14): the single-pass
//! configuration-ladder engine must be **byte-identical** to the
//! per-cell oracle — same `SimResult`s (stats, f64 overheads, census
//! counts) and the same settled per-cell event stream — across the
//! paper's granularity spectrum, a capacity ladder and every pressure
//! level, on catalog workloads and on randomized traces.
//!
//! The worker-count axis is pinned with `CCE_TEST_THREADS=<T>` exactly
//! as in `concurrent_conformance.rs` (CI runs 1 and 4).

use cce_core::{CacheEvent, CodeCache, Granularity};
use cce_dbt::{SuperblockInfo, TraceLog};
use cce_sim::ladder::{simulate_ladder_observed, simulate_ladder_source, LadderCell};
use cce_sim::{Engine, Replay, SimConfig, SimError, SimResult};
use cce_tinyvm::program::Pc;
use cce_workloads::catalog;
use std::sync::{Arc, Mutex};

fn thread_counts() -> Vec<usize> {
    match std::env::var("CCE_TEST_THREADS") {
        Ok(v) => vec![v.parse().expect("CCE_TEST_THREADS must be an integer")],
        Err(_) => vec![1, 2, 4],
    }
}

/// The paper's granularity axis at conformance scale: FLUSH, three
/// unit ladders and the fine-grained FIFO.
fn granularities() -> Vec<Granularity> {
    vec![
        Granularity::Flush,
        Granularity::units(2),
        Granularity::units(8),
        Granularity::units(64),
        Granularity::Superblock,
    ]
}

/// Explicit ladder rungs for the direct-API tests: the pressure ladder
/// with capacities pre-truncated to unit multiples, as the ladder
/// engine requires (the matrix path does this internally).
fn rungs_for(max_cache: u64) -> Vec<LadderCell> {
    let mut rungs = Vec::new();
    for granularity in granularities() {
        for pressure in [2u64, 6, 10] {
            let capacity = (max_cache / pressure).max(4096);
            let capacity = match granularity.unit_count() {
                Some(n) => (capacity / u64::from(n)) * u64::from(n),
                None => capacity,
            };
            rungs.push(LadderCell {
                granularity,
                capacity,
            });
        }
    }
    rungs
}

/// Runs one rung on the naive engine while recording its settled event
/// stream through the cache observer.
fn oracle_observed(
    trace: &TraceLog,
    cell: LadderCell,
    base: &SimConfig,
) -> (SimResult, Vec<CacheEvent>) {
    let log = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&log);
    let mut cache = CodeCache::with_granularity(cell.granularity, cell.capacity).unwrap();
    cache.set_observer(Box::new(move |ev: CacheEvent| {
        sink.lock().unwrap().push(ev);
    }));
    let result = Replay::new(trace)
        .config(base)
        .session(cache, cell.granularity.label())
        .run()
        .unwrap()
        .into_solo();
    let events = log.lock().unwrap().clone();
    (result, events)
}

#[test]
fn matrix_ladder_is_byte_identical_to_naive_across_the_catalog() {
    let traces: Vec<TraceLog> = catalog::all()
        .into_iter()
        .take(8)
        .map(|m| m.trace(0.04, 11))
        .collect();
    let gs = granularities();
    let ps = [2u32, 6, 10];
    let base = SimConfig::default();
    for jobs in thread_counts() {
        let naive = Replay::matrix(&traces)
            .granularities(&gs)
            .pressures(&ps)
            .config(&base)
            .jobs(jobs)
            .run()
            .unwrap();
        let ladder = Replay::matrix(&traces)
            .granularities(&gs)
            .pressures(&ps)
            .config(&base)
            .jobs(jobs)
            .engine(Engine::Ladder)
            .run()
            .unwrap();
        assert_eq!(naive.len(), traces.len() * gs.len() * ps.len());
        for (n, l) in naive.iter().zip(&ladder) {
            assert_eq!(n, l, "jobs={jobs} cell={:?}", n.cell);
        }
    }
}

#[test]
fn per_cell_event_streams_are_byte_identical() {
    let trace = catalog::by_name("gzip").unwrap().trace(0.05, 23);
    let base = SimConfig::default();
    let rungs = rungs_for(trace.max_cache_bytes());
    let mut streams: Vec<Vec<CacheEvent>> = vec![Vec::new(); rungs.len()];
    let mut observer = |cell: usize, event: CacheEvent| streams[cell].push(event);
    let results = simulate_ladder_observed(&trace, &rungs, &base, &mut observer).unwrap();
    for (i, rung) in rungs.iter().enumerate() {
        let (want_result, want_events) = oracle_observed(&trace, *rung, &base);
        assert_eq!(
            results[i],
            want_result,
            "{} @ {}",
            rung.granularity.label(),
            rung.capacity
        );
        assert_eq!(
            streams[i],
            want_events,
            "event stream diverged: {} @ {}",
            rung.granularity.label(),
            rung.capacity
        );
    }
}

#[test]
fn chaining_and_unlink_charging_switches_conform() {
    let trace = catalog::by_name("crafty").unwrap().trace(0.04, 5);
    let rungs = rungs_for(trace.max_cache_bytes());
    for base in [
        SimConfig {
            chaining: false,
            ..SimConfig::default()
        },
        SimConfig {
            charge_unlinks: false,
            ..SimConfig::default()
        },
    ] {
        let results = simulate_ladder_source(&trace, &rungs, &base).unwrap();
        for (rung, got) in rungs.iter().zip(&results) {
            let (want, _) = oracle_observed(&trace, *rung, &base);
            assert_eq!(got, &want);
        }
    }
}

#[test]
fn config_errors_surface_as_sim_errors_not_panics() {
    let trace = catalog::by_name("mcf").unwrap().trace(0.04, 2);
    let base = SimConfig::default();
    let empty: &[LadderCell] = &[];
    assert!(matches!(
        simulate_ladder_source(&trace, empty, &base).unwrap_err(),
        SimError::Config(_)
    ));
    let indivisible = [LadderCell {
        granularity: Granularity::units(8),
        capacity: 4001,
    }];
    assert!(matches!(
        simulate_ladder_source(&trace, &indivisible, &base).unwrap_err(),
        SimError::Config(_)
    ));
}

/// A hand-built trace whose second superblock cannot fit a FLUSH unit:
/// the oracle counts it uncacheable on every access and never records
/// first-touch; the ladder must reproduce that exactly (including the
/// cold-miss classification staying cold forever).
#[test]
fn uncacheable_superblocks_conform() {
    let mut log = TraceLog::new("oversized");
    for (i, size) in [600u32, 5000, 700].iter().enumerate() {
        log.record_superblock(SuperblockInfo {
            id: cce_core::SuperblockId(i as u64),
            head_pc: Pc(i as u64 * 0x40),
            size: *size,
            guest_blocks: 3,
            exits: 2,
        });
    }
    let mut prev = None;
    for lap in 0..40u64 {
        for i in 0..3u64 {
            let id = cce_core::SuperblockId(i);
            log.record_access(id, prev);
            prev = Some(id);
        }
        if lap % 7 == 0 {
            prev = None;
        }
    }
    let base = SimConfig::default();
    let rungs = [
        LadderCell {
            granularity: Granularity::Flush,
            capacity: 4096,
        },
        LadderCell {
            granularity: Granularity::units(2),
            capacity: 4096,
        },
        LadderCell {
            granularity: Granularity::Superblock,
            capacity: 4096,
        },
    ];
    let mut streams: Vec<Vec<CacheEvent>> = vec![Vec::new(); rungs.len()];
    let mut observer = |cell: usize, event: CacheEvent| streams[cell].push(event);
    let results = simulate_ladder_observed(&log, &rungs, &base, &mut observer).unwrap();
    for (i, rung) in rungs.iter().enumerate() {
        let (want_result, want_events) = oracle_observed(&log, *rung, &base);
        assert!(want_result.uncacheable > 0, "fixture lost its point");
        assert_eq!(results[i], want_result, "{}", rung.granularity.label());
        assert_eq!(streams[i], want_events, "{}", rung.granularity.label());
    }
}

/// Minimal multiplicative LCG (Park–Miller) — the repo carries no
/// property-testing dependency, so the random-trace sweep is hand
/// rolled and fully seed-pinned.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn random_trace(seed: u64) -> TraceLog {
    let mut rng = Lcg(seed.wrapping_mul(2654435761).wrapping_add(99991));
    let blocks = 12 + rng.below(29);
    let events = 400 + rng.below(1101);
    let mut log = TraceLog::new("random");
    for i in 0..blocks {
        log.record_superblock(SuperblockInfo {
            id: cce_core::SuperblockId(i),
            head_pc: Pc(i * 0x80),
            size: 16 + u32::try_from(rng.below(497)).unwrap(),
            guest_blocks: 1 + u32::try_from(rng.below(8)).unwrap(),
            exits: 1 + u32::try_from(rng.below(4)).unwrap(),
        });
    }
    let mut prev = None;
    for _ in 0..events {
        // Zipf-ish skew: half the accesses hit the first quarter of
        // the universe, so residency and eviction churn both happen.
        let id = if rng.below(2) == 0 {
            cce_core::SuperblockId(rng.below((blocks / 4).max(1)))
        } else {
            cce_core::SuperblockId(rng.below(blocks))
        };
        let direct = if rng.below(10) < 7 { prev } else { None };
        log.record_access(id, direct);
        prev = Some(id);
    }
    log
}

#[test]
fn random_traces_conform_property_style() {
    let base = SimConfig::default();
    for case in 0..24u64 {
        let log = random_trace(case);
        let footprint: u64 = log.superblocks.iter().map(|s| u64::from(s.size)).sum();
        let max_block = log.superblocks.iter().map(|s| s.size).max().unwrap_or(1);
        // Two capacities in multiples of 8 (divisible by every unit
        // count used below), both at least one max-sized block so the
        // caches stay under genuine eviction pressure.
        let cap_a = ((footprint / 3).max(u64::from(max_block)) / 8 + 1) * 8;
        let cap_b = ((footprint / 7).max(u64::from(max_block)) / 8 + 1) * 8;
        let rungs: Vec<LadderCell> = [cap_a, cap_b]
            .into_iter()
            .flat_map(|capacity| {
                [
                    Granularity::Flush,
                    Granularity::units(2),
                    Granularity::units(4),
                    Granularity::units(8),
                    Granularity::Superblock,
                ]
                .into_iter()
                .map(move |granularity| LadderCell {
                    granularity,
                    capacity,
                })
            })
            .collect();
        let mut streams: Vec<Vec<CacheEvent>> = vec![Vec::new(); rungs.len()];
        let mut observer = |cell: usize, event: CacheEvent| streams[cell].push(event);
        let results = simulate_ladder_observed(&log, &rungs, &base, &mut observer).unwrap();
        for (i, rung) in rungs.iter().enumerate() {
            let (want_result, want_events) = oracle_observed(&log, *rung, &base);
            assert_eq!(
                results[i],
                want_result,
                "case={case} {} @ {}",
                rung.granularity.label(),
                rung.capacity
            );
            assert_eq!(
                streams[i],
                want_events,
                "case={case} stream {} @ {}",
                rung.granularity.label(),
                rung.capacity
            );
        }
    }
}
