//! Temporary calibration probe (not a real test suite).

use cce_core::Granularity;
use cce_sim::pressure::simulate_at_pressure;
use cce_sim::simulator::SimConfig;

#[test]
#[ignore]
fn probe() {
    for name in ["word", "gcc", "gzip"] {
        let m = cce_workloads::by_name(name).unwrap();
        let t = m.trace(0.3, 42);
        println!(
            "== {name}: sbs={} accesses={} maxCache={}KB",
            t.superblocks.len(),
            t.events.len(),
            t.max_cache_bytes() / 1024
        );
        for g in Granularity::spectrum(8) {
            let r = simulate_at_pressure(&t, g, 2, &SimConfig::default()).unwrap();
            println!(
                "{:>9}: miss={:.4} capmiss={} evict_inv={} padding={} blocks_evicted={}",
                g.label(),
                r.stats.miss_rate(),
                r.stats.capacity_misses,
                r.stats.eviction_invocations,
                r.stats.padding_bytes,
                r.stats.blocks_evicted,
            );
        }
    }
}
