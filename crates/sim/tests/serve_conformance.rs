//! Serve ↔ offline conformance (DESIGN.md §13): a seeded serve run on
//! one worker thread must apply, per tenant, the byte-identical event
//! stream the offline replay of the same plan applies — and end with
//! identical per-tenant cache statistics at *any* thread count, because
//! each tenant is owned by exactly one worker and frames arrive in
//! stream order.
//!
//! The thread sweep is pinned with `CCE_TEST_THREADS=<T>` exactly as in
//! `concurrent_conformance.rs` (CI runs 1 and 4).

use cce_dbt::stream::encode_chunk_payload;
use cce_sim::serve::{offline_baseline, ServePlan};
use cce_sim::{run_serve, ServeConfig};
use cce_workloads::catalog;

/// Unloaded, seed-pinned config: the rate is far beyond the plan size,
/// so pacing never sleeps, and the plan stays well under the ingress
/// budget, so nothing is ever shed.
fn cfg(threads: usize) -> ServeConfig {
    ServeConfig {
        tenants: 4,
        threads,
        rps: 500_000.0,
        duration_secs: 0.002, // ~1000 requests of 16 events: << queue_events
        batch_events: 16,
        skew: 0.9,
        seed: 23,
        record_events: true,
        ..ServeConfig::default()
    }
}

fn thread_counts() -> Vec<usize> {
    match std::env::var("CCE_TEST_THREADS") {
        Ok(v) => vec![v.parse().expect("CCE_TEST_THREADS must be an integer")],
        Err(_) => vec![1, 2, 4],
    }
}

fn plan(cfg: &ServeConfig) -> ServePlan {
    let trace = catalog::by_name("gzip").unwrap().trace(0.05, 23);
    ServePlan::build(&trace.superblocks, &trace.name, cfg).unwrap()
}

#[test]
fn single_threaded_serve_is_byte_identical_to_offline_replay() {
    let cfg = cfg(1);
    let plan = plan(&cfg);
    let report = run_serve(&plan, &cfg).unwrap();
    assert_eq!(report.dropped_events, 0, "unloaded run shed work");
    assert_eq!(report.rejected_frames, 0);
    assert!(!report.disconnected);

    let offline = offline_baseline(&plan, &cfg).unwrap();
    let log = report.applied_log.as_ref().expect("record_events was set");
    for (t, offline_stats) in offline.iter().enumerate() {
        assert_eq!(
            encode_chunk_payload(&log[t]),
            encode_chunk_payload(&plan.per_tenant[t]),
            "tenant {t}: applied events differ from the offline stream"
        );
        assert_eq!(
            &report.per_tenant[t].stats, offline_stats,
            "tenant {t}: cache statistics diverged from offline replay"
        );
    }
}

#[test]
fn serve_stats_match_offline_at_every_thread_count() {
    for threads in thread_counts() {
        let cfg = cfg(threads);
        let plan = plan(&cfg);
        let report = run_serve(&plan, &cfg).unwrap();
        assert_eq!(report.dropped_events, 0, "threads={threads}");
        assert_eq!(report.applied_events, plan.event_count, "threads={threads}");
        let offline = offline_baseline(&plan, &cfg).unwrap();
        for (t, offline_stats) in offline.iter().enumerate() {
            assert_eq!(
                &report.per_tenant[t].stats, offline_stats,
                "threads={threads} tenant {t}"
            );
        }
    }
}

#[test]
fn seeded_serve_runs_are_reproducible() {
    let cfg = cfg(1);
    let plan_a = plan(&cfg);
    let plan_b = plan(&cfg);
    assert_eq!(plan_a, plan_b, "the traffic plan must be seed-pure");
    let a = run_serve(&plan_a, &cfg).unwrap();
    let b = run_serve(&plan_b, &cfg).unwrap();
    assert_eq!(a.applied_log, b.applied_log);
    for (x, y) in a.per_tenant.iter().zip(&b.per_tenant) {
        assert_eq!(x.stats, y.stats);
    }
}
