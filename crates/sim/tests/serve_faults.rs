//! Fault injection for the serve loop (DESIGN.md §13): the server must
//! *degrade*, never deadlock — a mid-chunk disconnect ends the run
//! cleanly with partial progress, a CRC-corrupt frame is rejected
//! per-frame while the stream stays aligned, and sustained overload
//! sheds whole batches against the bounded ingress instead of growing
//! without limit. Every scenario runs under a watchdog (the
//! `lock_interleave.rs` idiom): a hang shows up as a timeout here, not
//! a stuck CI job.

use std::sync::mpsc;
use std::time::Duration;

use cce_core::SuperblockId;
use cce_dbt::SuperblockInfo;
use cce_sim::serve::{ServePlan, ServeReport};
use cce_sim::{run_serve, ServeConfig, ServeFaults};
use cce_tinyvm::program::Pc;

/// Generous bound for a millisecond-scale serve run; only a lost lock
/// or an unbounded queue ever gets near it.
const WATCHDOG: Duration = Duration::from_secs(120);

fn registry(n: u64) -> Vec<SuperblockInfo> {
    (0..n)
        .map(|i| SuperblockInfo {
            id: SuperblockId(i * 13 + 5),
            head_pc: Pc(i * 64),
            size: 100 + (i as u32 % 7) * 30,
            guest_blocks: 3,
            exits: 2,
        })
        .collect()
}

/// Unpaced baseline: ~2000 requests of 16 events each.
fn base_cfg() -> ServeConfig {
    ServeConfig {
        tenants: 3,
        threads: 2,
        rps: 500_000.0,
        duration_secs: 0.004,
        batch_events: 16,
        seed: 31,
        ..ServeConfig::default()
    }
}

/// Runs the scenario on its own thread and panics if it outlives the
/// watchdog instead of letting CI hang.
fn serve_with_watchdog(cfg: ServeConfig) -> (ServePlan, ServeReport) {
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        let plan = ServePlan::build(&registry(24), "faults", &cfg).unwrap();
        let report = run_serve(&plan, &cfg).unwrap();
        // A hung serve loop means nobody is listening; ignore that.
        let _ = tx.send((plan, report));
    });
    rx.recv_timeout(WATCHDOG)
        .expect("serve run exceeded the watchdog: lost lock or unbounded queue")
}

#[test]
fn mid_chunk_disconnect_ends_cleanly_with_partial_progress() {
    let cfg = ServeConfig {
        faults: ServeFaults {
            // Past the header, far short of the ~100+ KiB of frames.
            disconnect_after_bytes: Some(4096),
            ..ServeFaults::default()
        },
        ..base_cfg()
    };
    let (plan, report) = serve_with_watchdog(cfg);
    assert!(report.disconnected, "the cut stream must be reported");
    assert!(
        report.applied_events > 0,
        "frames before the cut must have been served"
    );
    assert!(
        report.applied_events < plan.event_count,
        "the disconnect cannot have delivered the whole plan"
    );
    // Everything admitted was drained before shutdown.
    assert_eq!(report.applied_events, report.delivered_events);
}

#[test]
fn crc_corrupt_frames_are_rejected_without_losing_the_stream() {
    let every = 3u64;
    let cfg = ServeConfig {
        faults: ServeFaults {
            corrupt_every: Some(every),
            ..ServeFaults::default()
        },
        ..base_cfg()
    };
    let (plan, report) = serve_with_watchdog(cfg);
    let corrupted = plan.requests.len() as u64 / every;
    assert!(corrupted > 0, "the plan is too small to corrupt anything");
    assert_eq!(report.rejected_frames, corrupted);
    assert!(!report.disconnected, "rejection must not kill the stream");
    assert_eq!(report.dropped_events, 0);
    // Every healthy frame was applied; every corrupt one was skipped
    // whole (the plan makes all frames exactly `batch_events` long).
    assert_eq!(
        report.applied_events,
        plan.event_count - corrupted * cfg.batch_events as u64
    );
}

#[test]
fn sustained_overload_sheds_batches_against_the_bounded_ingress() {
    let cfg = ServeConfig {
        threads: 1,
        // Each batch holds the worker ~1ms while ~2000 requests arrive
        // unpaced: the ingress saturates almost immediately.
        queue_events: 64,
        faults: ServeFaults {
            apply_delay_micros: 1000,
            ..ServeFaults::default()
        },
        duration_secs: 0.001,
        ..base_cfg()
    };
    let (plan, report) = serve_with_watchdog(cfg);
    assert!(
        report.dropped_events > 0,
        "overload must shed, not queue without bound"
    );
    assert!(
        report.queue_high_water <= cfg.queue_events as u64,
        "high water {} broke the ingress budget {}",
        report.queue_high_water,
        cfg.queue_events
    );
    // Shedding is whole-batch and fully accounted.
    assert_eq!(
        report.dropped_events,
        report.dropped_requests * cfg.batch_events as u64
    );
    assert_eq!(
        report.delivered_events + report.dropped_events,
        plan.event_count,
        "every offered event is either delivered or counted as shed"
    );
    // The queue drains completely before shutdown: bounded memory and
    // no abandoned work.
    assert_eq!(report.applied_events, report.delivered_events);
}
