//! Incremental, validated construction of [`Program`]s.
//!
//! [`ProgramBuilder`] lets callers (tests, examples, and the random program
//! generators in [`crate::gen`]) assemble functions block by block, then
//! validates the control-flow graph and performs the byte layout in
//! [`ProgramBuilder::finish`].

use crate::isa::{Cond, Instr, Reg};
use crate::program::{BasicBlock, BlockId, FuncId, Function, Pc, Program, Terminator};
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// An error produced while validating a program under construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// The program has no functions.
    Empty,
    /// A function has no entry block set.
    MissingEntry(FuncId),
    /// A block was never given a terminator.
    MissingTerminator(BlockId),
    /// A terminator targets a block in a different function.
    CrossFunctionTarget { block: BlockId, target: BlockId },
    /// A call references an unknown function.
    UnknownCallee { block: BlockId, callee: FuncId },
    /// An indirect jump has no targets.
    EmptyIndirect(BlockId),
    /// The entry block of a function is owned by another function.
    ForeignEntry(FuncId),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::Empty => write!(f, "program has no functions"),
            BuildError::MissingEntry(fid) => {
                write!(f, "function {} has no entry block", fid.0)
            }
            BuildError::MissingTerminator(b) => {
                write!(f, "block {} has no terminator", b.0)
            }
            BuildError::CrossFunctionTarget { block, target } => write!(
                f,
                "block {} branches to block {} in a different function",
                block.0, target.0
            ),
            BuildError::UnknownCallee { block, callee } => {
                write!(f, "block {} calls unknown function {}", block.0, callee.0)
            }
            BuildError::EmptyIndirect(b) => {
                write!(f, "block {} has an indirect jump with no targets", b.0)
            }
            BuildError::ForeignEntry(fid) => {
                write!(f, "entry block of function {} belongs elsewhere", fid.0)
            }
        }
    }
}

impl Error for BuildError {}

struct PendingBlock {
    func: FuncId,
    instrs: Vec<Instr>,
    terminator: Option<Terminator>,
}

struct PendingFunction {
    name: String,
    entry: Option<BlockId>,
    blocks: Vec<BlockId>,
}

/// Builder for [`Program`]s. See the crate-level example.
#[derive(Default)]
pub struct ProgramBuilder {
    functions: Vec<PendingFunction>,
    blocks: Vec<PendingBlock>,
    memory_words: usize,
}

impl fmt::Debug for ProgramBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ProgramBuilder")
            .field("functions", &self.functions.len())
            .field("blocks", &self.blocks.len())
            .finish()
    }
}

impl ProgramBuilder {
    /// Creates an empty builder with a default guest memory of 64 Ki words.
    #[must_use]
    pub fn new() -> ProgramBuilder {
        ProgramBuilder {
            functions: Vec::new(),
            blocks: Vec::new(),
            memory_words: 1 << 16,
        }
    }

    /// Sets the guest data-memory size in 64-bit words.
    pub fn memory_words(&mut self, words: usize) -> &mut Self {
        self.memory_words = words.max(1);
        self
    }

    /// Starts a new function. The first function created is `main`.
    pub fn begin_function(&mut self, name: &str) -> FuncId {
        let id = FuncId(self.functions.len() as u32);
        self.functions.push(PendingFunction {
            name: name.to_owned(),
            entry: None,
            blocks: Vec::new(),
        });
        id
    }

    /// Creates a new empty block owned by `func`.
    ///
    /// # Panics
    ///
    /// Panics if `func` was not created by this builder.
    pub fn block(&mut self, func: FuncId) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(PendingBlock {
            func,
            instrs: Vec::new(),
            terminator: None,
        });
        self.functions[func.0 as usize].blocks.push(id);
        id
    }

    /// Appends an instruction to `block`'s body.
    ///
    /// # Panics
    ///
    /// Panics if `block` is unknown.
    pub fn push(&mut self, block: BlockId, instr: Instr) -> &mut Self {
        self.blocks[block.0 as usize].instrs.push(instr);
        self
    }

    /// Appends several instructions to `block`'s body.
    pub fn push_all<I: IntoIterator<Item = Instr>>(&mut self, block: BlockId, instrs: I) {
        self.blocks[block.0 as usize].instrs.extend(instrs);
    }

    /// Terminates `block` with an unconditional jump.
    pub fn jump(&mut self, block: BlockId, target: BlockId) {
        self.terminate(block, Terminator::Jump(target));
    }

    /// Terminates `block` with a conditional branch.
    pub fn branch(
        &mut self,
        block: BlockId,
        cond: Cond,
        lhs: Reg,
        rhs: Reg,
        taken: BlockId,
        fallthrough: BlockId,
    ) {
        self.terminate(
            block,
            Terminator::Branch {
                cond,
                lhs,
                rhs,
                taken,
                fallthrough,
            },
        );
    }

    /// Terminates `block` with a call that resumes at `ret_to`.
    pub fn call(&mut self, block: BlockId, callee: FuncId, ret_to: BlockId) {
        self.terminate(block, Terminator::Call { callee, ret_to });
    }

    /// Terminates `block` with a return.
    pub fn ret(&mut self, block: BlockId) {
        self.terminate(block, Terminator::Return);
    }

    /// Terminates `block` with an indirect jump over `targets`.
    pub fn indirect(&mut self, block: BlockId, selector: Reg, targets: Vec<BlockId>) {
        self.terminate(block, Terminator::IndirectJump { selector, targets });
    }

    /// Terminates `block` with `Halt`.
    pub fn halt(&mut self, block: BlockId) {
        self.terminate(block, Terminator::Halt);
    }

    /// Sets an arbitrary terminator on `block`.
    ///
    /// # Panics
    ///
    /// Panics if the block already has a terminator (a block terminates
    /// exactly once).
    pub fn terminate(&mut self, block: BlockId, t: Terminator) {
        let b = &mut self.blocks[block.0 as usize];
        assert!(b.terminator.is_none(), "block {} terminated twice", block.0);
        b.terminator = Some(t);
    }

    /// Declares `entry` as the entry block of `func`.
    pub fn set_entry(&mut self, func: FuncId, entry: BlockId) {
        self.functions[func.0 as usize].entry = Some(entry);
    }

    /// Validates the CFG, lays out the image and produces the [`Program`].
    ///
    /// # Errors
    ///
    /// Returns a [`BuildError`] if the program is empty, any function lacks
    /// an entry, any block lacks a terminator, a branch crosses function
    /// boundaries, a call names an unknown function, or an indirect jump has
    /// no targets.
    pub fn finish(self) -> Result<Program, BuildError> {
        if self.functions.is_empty() {
            return Err(BuildError::Empty);
        }
        let n_funcs = self.functions.len() as u32;
        // Validate.
        for (bi, b) in self.blocks.iter().enumerate() {
            let id = BlockId(bi as u32);
            let term = b
                .terminator
                .as_ref()
                .ok_or(BuildError::MissingTerminator(id))?;
            for tgt in term.successors() {
                let tf = self.blocks[tgt.0 as usize].func;
                if tf != b.func {
                    return Err(BuildError::CrossFunctionTarget {
                        block: id,
                        target: tgt,
                    });
                }
            }
            if let Terminator::Call { callee, .. } = term {
                if callee.0 >= n_funcs {
                    return Err(BuildError::UnknownCallee {
                        block: id,
                        callee: *callee,
                    });
                }
            }
            if let Terminator::IndirectJump { targets, .. } = term {
                if targets.is_empty() {
                    return Err(BuildError::EmptyIndirect(id));
                }
            }
        }
        for (fi, f) in self.functions.iter().enumerate() {
            let fid = FuncId(fi as u32);
            let entry = f.entry.ok_or(BuildError::MissingEntry(fid))?;
            if self.blocks[entry.0 as usize].func != fid {
                return Err(BuildError::ForeignEntry(fid));
            }
        }

        // Materialize blocks.
        let blocks: Vec<BasicBlock> = self
            .blocks
            .into_iter()
            .enumerate()
            .map(|(bi, b)| BasicBlock {
                id: BlockId(bi as u32),
                func: b.func,
                instrs: b.instrs,
                terminator: b.terminator.expect("validated above"),
            })
            .collect();

        // Layout: functions in order, blocks in creation order within each,
        // starting at a non-zero base so addresses look like text segments.
        const TEXT_BASE: u64 = 0x0040_0000;
        let mut block_addr = vec![Pc(0); blocks.len()];
        let mut addr_to_block = BTreeMap::new();
        let mut cursor = TEXT_BASE;
        let functions: Vec<Function> = self
            .functions
            .into_iter()
            .enumerate()
            .map(|(fi, f)| {
                for &bid in &f.blocks {
                    let len = u64::from(blocks[bid.0 as usize].byte_len());
                    block_addr[bid.0 as usize] = Pc(cursor);
                    addr_to_block.insert(Pc(cursor), bid);
                    cursor += len;
                }
                // Align functions to 16 bytes, like a linker would.
                cursor = (cursor + 15) & !15;
                Function {
                    id: FuncId(fi as u32),
                    name: f.name,
                    entry: f.entry.expect("validated above"),
                    blocks: f.blocks,
                }
            })
            .collect();
        let image_len = blocks
            .iter()
            .map(|b| block_addr[b.id.0 as usize].addr() + u64::from(b.byte_len()))
            .max()
            .unwrap_or(TEXT_BASE);

        Ok(Program {
            functions,
            blocks,
            block_addr,
            addr_to_block,
            main: FuncId(0),
            memory_words: self.memory_words,
            image_len,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_program_is_rejected() {
        assert_eq!(
            ProgramBuilder::new().finish().unwrap_err(),
            BuildError::Empty
        );
    }

    #[test]
    fn missing_terminator_is_rejected() {
        let mut b = ProgramBuilder::new();
        let f = b.begin_function("main");
        let e = b.block(f);
        b.set_entry(f, e);
        assert!(matches!(
            b.finish().unwrap_err(),
            BuildError::MissingTerminator(_)
        ));
    }

    #[test]
    fn missing_entry_is_rejected() {
        let mut b = ProgramBuilder::new();
        let f = b.begin_function("main");
        let e = b.block(f);
        b.halt(e);
        assert!(matches!(
            b.finish().unwrap_err(),
            BuildError::MissingEntry(_)
        ));
    }

    #[test]
    fn cross_function_branch_is_rejected() {
        let mut b = ProgramBuilder::new();
        let f = b.begin_function("main");
        let g = b.begin_function("aux");
        let fe = b.block(f);
        let ge = b.block(g);
        b.jump(fe, ge);
        b.halt(ge);
        b.set_entry(f, fe);
        b.set_entry(g, ge);
        assert!(matches!(
            b.finish().unwrap_err(),
            BuildError::CrossFunctionTarget { .. }
        ));
    }

    #[test]
    fn empty_indirect_is_rejected() {
        let mut b = ProgramBuilder::new();
        let f = b.begin_function("main");
        let e = b.block(f);
        b.indirect(e, Reg::R1, vec![]);
        b.set_entry(f, e);
        assert!(matches!(
            b.finish().unwrap_err(),
            BuildError::EmptyIndirect(_)
        ));
    }

    #[test]
    #[should_panic(expected = "terminated twice")]
    fn double_terminate_panics() {
        let mut b = ProgramBuilder::new();
        let f = b.begin_function("main");
        let e = b.block(f);
        b.halt(e);
        b.halt(e);
    }

    #[test]
    fn valid_multi_function_program_builds() {
        let mut b = ProgramBuilder::new();
        let main = b.begin_function("main");
        let helper = b.begin_function("helper");
        let m0 = b.block(main);
        let m1 = b.block(main);
        let h0 = b.block(helper);
        b.call(m0, helper, m1);
        b.halt(m1);
        b.ret(h0);
        b.set_entry(main, m0);
        b.set_entry(helper, h0);
        let p = b.finish().unwrap();
        assert_eq!(p.functions().len(), 2);
        assert_eq!(p.block_count(), 3);
        assert_eq!(p.function(p.main()).name, "main");
        // Function layout is 16-byte aligned.
        let h_addr = p.block_addr(h0).addr();
        assert_eq!(h_addr % 16, 0);
    }
}
