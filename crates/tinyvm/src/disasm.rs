//! Textual disassembly of programs, blocks and instructions.
//!
//! Mainly a debugging aid: `cce-dbt` logs superblock contents through these
//! formatters, and the examples print small programs with them.

use crate::isa::Instr;
use crate::program::{BasicBlock, Program, Terminator};
use std::fmt::Write as _;

/// Formats a single instruction in AT&T-flavoured assembly.
///
/// # Example
///
/// ```
/// use cce_tinyvm::disasm::format_instr;
/// use cce_tinyvm::isa::{Instr, Reg};
/// let s = format_instr(&Instr::AddImm { dst: Reg::R1, src: Reg::R2, imm: -4 });
/// assert_eq!(s, "addi  r1, r2, -4");
/// ```
#[must_use]
pub fn format_instr(instr: &Instr) -> String {
    match *instr {
        Instr::MovImm { dst, imm } => format!("movi  {dst}, {imm}"),
        Instr::Mov { dst, src } => format!("mov   {dst}, {src}"),
        Instr::Add { dst, a, b } => format!("add   {dst}, {a}, {b}"),
        Instr::AddImm { dst, src, imm } => format!("addi  {dst}, {src}, {imm}"),
        Instr::Sub { dst, a, b } => format!("sub   {dst}, {a}, {b}"),
        Instr::Mul { dst, a, b } => format!("mul   {dst}, {a}, {b}"),
        Instr::Xor { dst, a, b } => format!("xor   {dst}, {a}, {b}"),
        Instr::And { dst, a, b } => format!("and   {dst}, {a}, {b}"),
        Instr::Or { dst, a, b } => format!("or    {dst}, {a}, {b}"),
        Instr::ShlImm { dst, src, amount } => format!("shl   {dst}, {src}, {amount}"),
        Instr::ShrImm { dst, src, amount } => format!("shr   {dst}, {src}, {amount}"),
        Instr::Load { dst, base, offset } => format!("ld    {dst}, [{base}{offset:+}]"),
        Instr::Store { src, base, offset } => format!("st    [{base}{offset:+}], {src}"),
        Instr::Nop => "nop".to_owned(),
    }
}

/// Formats a terminator.
#[must_use]
pub fn format_terminator(t: &Terminator) -> String {
    match t {
        Terminator::Jump(b) => format!("jmp   B{}", b.0),
        Terminator::Branch {
            cond,
            lhs,
            rhs,
            taken,
            fallthrough,
        } => format!(
            "b.{cond}  {lhs}, {rhs} -> B{} else B{}",
            taken.0, fallthrough.0
        ),
        Terminator::Call { callee, ret_to } => format!("call  F{} ret B{}", callee.0, ret_to.0),
        Terminator::Return => "ret".to_owned(),
        Terminator::IndirectJump { selector, targets } => {
            let ts: Vec<String> = targets.iter().map(|t| format!("B{}", t.0)).collect();
            format!("ijmp  {selector} [{}]", ts.join(", "))
        }
        Terminator::Halt => "halt".to_owned(),
    }
}

/// Formats one basic block with its layout address.
#[must_use]
pub fn format_block(program: &Program, block: &BasicBlock) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "B{} @ {} ({} bytes):",
        block.id.0,
        program.block_addr(block.id),
        block.byte_len()
    );
    for i in &block.instrs {
        let _ = writeln!(out, "    {}", format_instr(i));
    }
    let _ = writeln!(out, "    {}", format_terminator(&block.terminator));
    out
}

/// Formats the entire program, function by function.
#[must_use]
pub fn format_program(program: &Program) -> String {
    let mut out = String::new();
    for f in program.functions() {
        let _ = writeln!(out, "fn {} (F{}):", f.name, f.id.0);
        for &bid in &f.blocks {
            out.push_str(&format_block(program, program.block(bid)));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::isa::{Cond, Reg};

    #[test]
    fn program_disassembly_mentions_every_block() {
        let mut b = ProgramBuilder::new();
        let f = b.begin_function("main");
        let e = b.block(f);
        let x = b.block(f);
        b.push(
            e,
            Instr::MovImm {
                dst: Reg::R1,
                imm: 3,
            },
        );
        b.branch(e, Cond::Ne, Reg::R1, Reg::ZERO, x, x);
        b.halt(x);
        b.set_entry(f, e);
        let p = b.finish().unwrap();
        let text = format_program(&p);
        assert!(text.contains("fn main"));
        assert!(text.contains("B0"));
        assert!(text.contains("B1"));
        assert!(text.contains("movi  r1, 3"));
        assert!(text.contains("halt"));
    }

    #[test]
    fn every_instr_formats_nonempty() {
        let instrs = [
            Instr::MovImm {
                dst: Reg::R1,
                imm: 0,
            },
            Instr::Mov {
                dst: Reg::R1,
                src: Reg::R2,
            },
            Instr::Add {
                dst: Reg::R1,
                a: Reg::R2,
                b: Reg::R3,
            },
            Instr::AddImm {
                dst: Reg::R1,
                src: Reg::R2,
                imm: 1,
            },
            Instr::Sub {
                dst: Reg::R1,
                a: Reg::R2,
                b: Reg::R3,
            },
            Instr::Mul {
                dst: Reg::R1,
                a: Reg::R2,
                b: Reg::R3,
            },
            Instr::Xor {
                dst: Reg::R1,
                a: Reg::R2,
                b: Reg::R3,
            },
            Instr::And {
                dst: Reg::R1,
                a: Reg::R2,
                b: Reg::R3,
            },
            Instr::Or {
                dst: Reg::R1,
                a: Reg::R2,
                b: Reg::R3,
            },
            Instr::ShlImm {
                dst: Reg::R1,
                src: Reg::R2,
                amount: 3,
            },
            Instr::ShrImm {
                dst: Reg::R1,
                src: Reg::R2,
                amount: 3,
            },
            Instr::Load {
                dst: Reg::R1,
                base: Reg::R2,
                offset: 0,
            },
            Instr::Store {
                src: Reg::R1,
                base: Reg::R2,
                offset: 0,
            },
            Instr::Nop,
        ];
        for i in &instrs {
            assert!(!format_instr(i).is_empty());
        }
    }
}
