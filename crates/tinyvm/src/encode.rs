//! Binary encoding of TinyVM instructions and program images.
//!
//! [`crate::isa::Instr::encoded_len`] drives every size computation in the
//! workspace, so the encoding had better exist: this module defines the
//! actual byte format, an encoder, a decoder, and a whole-program
//! assembler. A round-trip property test pins `encoded_len` to the real
//! encoder output, making the size model honest rather than declared.
//!
//! Encoding summary (opcodes in the high nibble where a register shares
//! the byte):
//!
//! | Form | Bytes |
//! |---|---|
//! | `MovImm` (32-bit imm) | `0x1d` + imm32 (5) |
//! | `MovImm` (64-bit imm) | `0x2d` + imm64 (9) |
//! | `Mov` | `0x30`, `dst<<4\|src` (2) |
//! | `Add/Sub/Xor/And/Or` | op, `dst<<4\|a`, `b` (3) |
//! | `Mul` | `0x38`, dst, a, b (4) |
//! | `AddImm` | `0x39`, `dst<<4\|src`, imm16 (4) |
//! | `Shl/ShrImm` | op, `dst<<4\|src`, amount (3) |
//! | `Load/Store` | op, `reg<<4\|base`, off16 (4) |
//! | `Nop` | `0x00` (1) |
//!
//! Terminators encode block ids as 16-bit indices (the *relocatable*
//! form; the assembler keeps them symbolic, like a linker's relocation
//! entries) and indirect-jump tables as 32-bit entries.

use crate::isa::{Cond, Instr, Reg};
use crate::program::{BlockId, Program, Terminator};
use std::error::Error;
use std::fmt;

/// An error produced while encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EncodeError {
    /// An immediate does not fit the instruction's 16-bit field.
    ImmediateTooWide(i64),
    /// A memory offset does not fit the 16-bit field.
    OffsetTooWide(i32),
    /// A block id does not fit the 16-bit branch-target field.
    BlockIdTooLarge(u32),
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::ImmediateTooWide(v) => write!(f, "immediate {v} exceeds 16 bits"),
            EncodeError::OffsetTooWide(v) => write!(f, "memory offset {v} exceeds 16 bits"),
            EncodeError::BlockIdTooLarge(v) => write!(f, "block id {v} exceeds 16 bits"),
        }
    }
}

impl Error for EncodeError {}

/// An error produced while decoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The input ended inside an instruction.
    Truncated,
    /// An unknown opcode byte.
    BadOpcode(u8),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "input ends inside an instruction"),
            DecodeError::BadOpcode(op) => write!(f, "unknown opcode {op:#04x}"),
        }
    }
}

impl Error for DecodeError {}

const OP_NOP: u8 = 0x00;
const OP_MOVIMM32: u8 = 0x10; // low nibble = dst
const OP_MOVIMM64: u8 = 0x20; // low nibble = dst
const OP_MOV: u8 = 0x30;
const OP_ADD: u8 = 0x31;
const OP_SUB: u8 = 0x32;
const OP_XOR: u8 = 0x33;
const OP_AND: u8 = 0x34;
const OP_OR: u8 = 0x35;
const OP_SHL: u8 = 0x36;
const OP_SHR: u8 = 0x37;
const OP_MUL: u8 = 0x38;
const OP_ADDIMM: u8 = 0x39;
const OP_LOAD: u8 = 0x3A;
const OP_STORE: u8 = 0x3B;

const OP_JUMP: u8 = 0x40;
const OP_BRANCH: u8 = 0x50; // low nibble = cond
const OP_CALL: u8 = 0x41;
const OP_RETURN: u8 = 0x42;
const OP_INDIRECT: u8 = 0x43;
const OP_HALT: u8 = 0x44;

fn regs(hi: Reg, lo: Reg) -> u8 {
    ((hi.index() as u8) << 4) | lo.index() as u8
}

fn split(byte: u8) -> (Reg, Reg) {
    (Reg::new(byte >> 4), Reg::new(byte & 0x0F))
}

fn cond_code(c: Cond) -> u8 {
    match c {
        Cond::Eq => 0,
        Cond::Ne => 1,
        Cond::Lt => 2,
        Cond::Le => 3,
        Cond::Gt => 4,
        Cond::Ge => 5,
    }
}

fn cond_from(code: u8) -> Option<Cond> {
    Some(match code {
        0 => Cond::Eq,
        1 => Cond::Ne,
        2 => Cond::Lt,
        3 => Cond::Le,
        4 => Cond::Gt,
        5 => Cond::Ge,
        _ => return None,
    })
}

/// Encodes one instruction, appending to `out`.
///
/// # Errors
///
/// Returns an [`EncodeError`] if an immediate or offset exceeds its field.
pub fn encode_instr(instr: &Instr, out: &mut Vec<u8>) -> Result<(), EncodeError> {
    match *instr {
        Instr::Nop => out.push(OP_NOP),
        Instr::MovImm { dst, imm } => {
            if let Ok(v) = i32::try_from(imm) {
                out.push(OP_MOVIMM32 | dst.index() as u8);
                out.extend_from_slice(&v.to_le_bytes());
            } else {
                out.push(OP_MOVIMM64 | dst.index() as u8);
                out.extend_from_slice(&imm.to_le_bytes());
            }
        }
        Instr::Mov { dst, src } => {
            out.push(OP_MOV);
            out.push(regs(dst, src));
        }
        Instr::Add { dst, a, b }
        | Instr::Sub { dst, a, b }
        | Instr::Xor { dst, a, b }
        | Instr::And { dst, a, b }
        | Instr::Or { dst, a, b } => {
            let op = match instr {
                Instr::Add { .. } => OP_ADD,
                Instr::Sub { .. } => OP_SUB,
                Instr::Xor { .. } => OP_XOR,
                Instr::And { .. } => OP_AND,
                _ => OP_OR,
            };
            out.push(op);
            out.push(regs(dst, a));
            out.push(b.index() as u8);
        }
        Instr::Mul { dst, a, b } => {
            out.push(OP_MUL);
            out.push(dst.index() as u8);
            out.push(a.index() as u8);
            out.push(b.index() as u8);
        }
        Instr::AddImm { dst, src, imm } => {
            let v = i16::try_from(imm).map_err(|_| EncodeError::ImmediateTooWide(imm))?;
            out.push(OP_ADDIMM);
            out.push(regs(dst, src));
            out.extend_from_slice(&v.to_le_bytes());
        }
        Instr::ShlImm { dst, src, amount } | Instr::ShrImm { dst, src, amount } => {
            out.push(if matches!(instr, Instr::ShlImm { .. }) {
                OP_SHL
            } else {
                OP_SHR
            });
            out.push(regs(dst, src));
            out.push(amount & 63);
        }
        Instr::Load { dst, base, offset } => {
            let v = i16::try_from(offset).map_err(|_| EncodeError::OffsetTooWide(offset))?;
            out.push(OP_LOAD);
            out.push(regs(dst, base));
            out.extend_from_slice(&v.to_le_bytes());
        }
        Instr::Store { src, base, offset } => {
            let v = i16::try_from(offset).map_err(|_| EncodeError::OffsetTooWide(offset))?;
            out.push(OP_STORE);
            out.push(regs(src, base));
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
    Ok(())
}

/// Decodes one instruction from the front of `bytes`, returning it and
/// the bytes consumed.
///
/// # Errors
///
/// Returns a [`DecodeError`] for truncated input or unknown opcodes.
pub fn decode_instr(bytes: &[u8]) -> Result<(Instr, usize), DecodeError> {
    let op = *bytes.first().ok_or(DecodeError::Truncated)?;
    let need = |n: usize| {
        if bytes.len() < n {
            Err(DecodeError::Truncated)
        } else {
            Ok(())
        }
    };
    match op {
        OP_NOP => Ok((Instr::Nop, 1)),
        _ if op & 0xF0 == OP_MOVIMM32 => {
            need(5)?;
            let imm = i32::from_le_bytes(bytes[1..5].try_into().expect("4 bytes"));
            Ok((
                Instr::MovImm {
                    dst: Reg::new(op & 0x0F),
                    imm: i64::from(imm),
                },
                5,
            ))
        }
        _ if op & 0xF0 == OP_MOVIMM64 => {
            need(9)?;
            let imm = i64::from_le_bytes(bytes[1..9].try_into().expect("8 bytes"));
            Ok((
                Instr::MovImm {
                    dst: Reg::new(op & 0x0F),
                    imm,
                },
                9,
            ))
        }
        OP_MOV => {
            need(2)?;
            let (dst, src) = split(bytes[1]);
            Ok((Instr::Mov { dst, src }, 2))
        }
        OP_ADD | OP_SUB | OP_XOR | OP_AND | OP_OR => {
            need(3)?;
            let (dst, a) = split(bytes[1]);
            let b = Reg::new(bytes[2] & 0x0F);
            let instr = match op {
                OP_ADD => Instr::Add { dst, a, b },
                OP_SUB => Instr::Sub { dst, a, b },
                OP_XOR => Instr::Xor { dst, a, b },
                OP_AND => Instr::And { dst, a, b },
                _ => Instr::Or { dst, a, b },
            };
            Ok((instr, 3))
        }
        OP_MUL => {
            need(4)?;
            Ok((
                Instr::Mul {
                    dst: Reg::new(bytes[1] & 0x0F),
                    a: Reg::new(bytes[2] & 0x0F),
                    b: Reg::new(bytes[3] & 0x0F),
                },
                4,
            ))
        }
        OP_ADDIMM => {
            need(4)?;
            let (dst, src) = split(bytes[1]);
            let imm = i16::from_le_bytes(bytes[2..4].try_into().expect("2 bytes"));
            Ok((
                Instr::AddImm {
                    dst,
                    src,
                    imm: i64::from(imm),
                },
                4,
            ))
        }
        OP_SHL | OP_SHR => {
            need(3)?;
            let (dst, src) = split(bytes[1]);
            let amount = bytes[2] & 63;
            let instr = if op == OP_SHL {
                Instr::ShlImm { dst, src, amount }
            } else {
                Instr::ShrImm { dst, src, amount }
            };
            Ok((instr, 3))
        }
        OP_LOAD | OP_STORE => {
            need(4)?;
            let (r, base) = split(bytes[1]);
            let offset = i32::from(i16::from_le_bytes(bytes[2..4].try_into().expect("2 bytes")));
            let instr = if op == OP_LOAD {
                Instr::Load {
                    dst: r,
                    base,
                    offset,
                }
            } else {
                Instr::Store {
                    src: r,
                    base,
                    offset,
                }
            };
            Ok((instr, 4))
        }
        other => Err(DecodeError::BadOpcode(other)),
    }
}

/// Encodes a terminator (relocatable form: block ids, not addresses).
///
/// # Errors
///
/// Returns [`EncodeError::BlockIdTooLarge`] if a 16-bit target field
/// overflows.
pub fn encode_terminator(t: &Terminator, out: &mut Vec<u8>) -> Result<(), EncodeError> {
    let id16 = |b: BlockId| -> Result<[u8; 2], EncodeError> {
        u16::try_from(b.0)
            .map(u16::to_le_bytes)
            .map_err(|_| EncodeError::BlockIdTooLarge(b.0))
    };
    match t {
        Terminator::Jump(target) => {
            out.push(OP_JUMP);
            out.extend_from_slice(&target.0.to_le_bytes());
        }
        Terminator::Branch {
            cond,
            lhs,
            rhs,
            taken,
            fallthrough,
        } => {
            out.push(OP_BRANCH | cond_code(*cond));
            out.push(regs(*lhs, *rhs));
            out.extend_from_slice(&id16(*taken)?);
            out.extend_from_slice(&id16(*fallthrough)?);
        }
        Terminator::Call { callee, ret_to } => {
            out.push(OP_CALL);
            out.extend_from_slice(&u16::try_from(callee.0).unwrap_or(u16::MAX).to_le_bytes());
            out.extend_from_slice(&id16(*ret_to)?);
        }
        Terminator::Return => out.push(OP_RETURN),
        Terminator::IndirectJump { selector, targets } => {
            out.push(OP_INDIRECT);
            out.push(selector.index() as u8);
            out.push(u8::try_from(targets.len()).unwrap_or(u8::MAX));
            for t in targets {
                out.extend_from_slice(&t.0.to_le_bytes());
            }
        }
        Terminator::Halt => {
            out.push(OP_HALT);
            out.push(0);
        }
    }
    Ok(())
}

/// Assembles a whole program into its byte image (relative to the text
/// base), padding inter-block gaps with NOP bytes.
///
/// # Errors
///
/// Propagates [`EncodeError`] from any instruction or terminator.
pub fn assemble(program: &Program) -> Result<Vec<u8>, EncodeError> {
    let base = program
        .blocks()
        .iter()
        .map(|b| program.block_addr(b.id).addr())
        .min()
        .unwrap_or(0);
    let len = usize::try_from(program.image_len() - base).expect("image fits in memory");
    let mut image = vec![OP_NOP; len];
    for block in program.blocks() {
        let mut bytes = Vec::with_capacity(block.byte_len() as usize);
        for instr in &block.instrs {
            encode_instr(instr, &mut bytes)?;
        }
        encode_terminator(&block.terminator, &mut bytes)?;
        debug_assert_eq!(
            bytes.len() as u32,
            block.byte_len(),
            "size model vs encoder"
        );
        let off = usize::try_from(program.block_addr(block.id).addr() - base).expect("in image");
        image[off..off + bytes.len()].copy_from_slice(&bytes);
    }
    Ok(image)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_instr_samples() -> Vec<Instr> {
        vec![
            Instr::Nop,
            Instr::MovImm {
                dst: Reg::R3,
                imm: 1234,
            },
            Instr::MovImm {
                dst: Reg::R4,
                imm: -77,
            },
            Instr::MovImm {
                dst: Reg::R5,
                imm: i64::MAX - 3,
            },
            Instr::Mov {
                dst: Reg::R1,
                src: Reg::R15,
            },
            Instr::Add {
                dst: Reg::R1,
                a: Reg::R2,
                b: Reg::R3,
            },
            Instr::Sub {
                dst: Reg::R4,
                a: Reg::R5,
                b: Reg::R6,
            },
            Instr::Xor {
                dst: Reg::R7,
                a: Reg::R8,
                b: Reg::R9,
            },
            Instr::And {
                dst: Reg::R10,
                a: Reg::R11,
                b: Reg::R12,
            },
            Instr::Or {
                dst: Reg::R13,
                a: Reg::R14,
                b: Reg::ZERO,
            },
            Instr::Mul {
                dst: Reg::R2,
                a: Reg::R3,
                b: Reg::R4,
            },
            Instr::AddImm {
                dst: Reg::R1,
                src: Reg::R1,
                imm: -1,
            },
            Instr::ShlImm {
                dst: Reg::R6,
                src: Reg::R5,
                amount: 13,
            },
            Instr::ShrImm {
                dst: Reg::R7,
                src: Reg::R5,
                amount: 7,
            },
            Instr::Load {
                dst: Reg::R8,
                base: Reg::R9,
                offset: -32,
            },
            Instr::Store {
                src: Reg::R8,
                base: Reg::R9,
                offset: 31,
            },
        ]
    }

    #[test]
    fn every_instruction_roundtrips() {
        for instr in all_instr_samples() {
            let mut bytes = Vec::new();
            encode_instr(&instr, &mut bytes).unwrap();
            let (back, used) = decode_instr(&bytes).unwrap();
            assert_eq!(back, instr);
            assert_eq!(used, bytes.len());
        }
    }

    #[test]
    fn encoded_len_matches_the_encoder_exactly() {
        // This is the contract every size computation in the workspace
        // rests on.
        for instr in all_instr_samples() {
            let mut bytes = Vec::new();
            encode_instr(&instr, &mut bytes).unwrap();
            assert_eq!(
                bytes.len() as u32,
                instr.encoded_len(),
                "{instr:?}: declared {} vs encoded {}",
                instr.encoded_len(),
                bytes.len()
            );
        }
    }

    #[test]
    fn terminator_lengths_match_the_encoder() {
        let terminators = [
            Terminator::Jump(BlockId(7)),
            Terminator::Branch {
                cond: Cond::Le,
                lhs: Reg::R1,
                rhs: Reg::R2,
                taken: BlockId(3),
                fallthrough: BlockId(4),
            },
            Terminator::Call {
                callee: crate::program::FuncId(2),
                ret_to: BlockId(9),
            },
            Terminator::Return,
            Terminator::IndirectJump {
                selector: Reg::R5,
                targets: vec![BlockId(1), BlockId(2), BlockId(3)],
            },
            Terminator::Halt,
        ];
        for t in &terminators {
            let mut bytes = Vec::new();
            encode_terminator(t, &mut bytes).unwrap();
            assert_eq!(bytes.len() as u32, t.encoded_len(), "{t:?}");
        }
    }

    #[test]
    fn oversized_fields_are_rejected() {
        let mut out = Vec::new();
        assert_eq!(
            encode_instr(
                &Instr::AddImm {
                    dst: Reg::R1,
                    src: Reg::R1,
                    imm: 40_000
                },
                &mut out
            ),
            Err(EncodeError::ImmediateTooWide(40_000))
        );
        assert_eq!(
            encode_instr(
                &Instr::Load {
                    dst: Reg::R1,
                    base: Reg::R2,
                    offset: 1 << 20
                },
                &mut out
            ),
            Err(EncodeError::OffsetTooWide(1 << 20))
        );
        assert_eq!(
            encode_terminator(
                &Terminator::Branch {
                    cond: Cond::Eq,
                    lhs: Reg::R1,
                    rhs: Reg::R2,
                    taken: BlockId(70_000),
                    fallthrough: BlockId(0),
                },
                &mut out
            ),
            Err(EncodeError::BlockIdTooLarge(70_000))
        );
    }

    #[test]
    fn decode_rejects_garbage_and_truncation() {
        assert_eq!(decode_instr(&[]), Err(DecodeError::Truncated));
        assert_eq!(decode_instr(&[0xFF]), Err(DecodeError::BadOpcode(0xFF)));
        assert_eq!(decode_instr(&[OP_MUL, 1]), Err(DecodeError::Truncated));
    }

    #[test]
    fn assembled_program_decodes_block_by_block() {
        use crate::gen::{generate, GenConfig};
        let p = generate(&GenConfig::small(17));
        let image = assemble(&p).unwrap();
        assert_eq!(image.len() as u64 + 0x0040_0000, p.image_len());
        let base = 0x0040_0000u64;
        for block in p.blocks() {
            let mut off = usize::try_from(p.block_addr(block.id).addr() - base).unwrap();
            for instr in &block.instrs {
                let (decoded, used) = decode_instr(&image[off..]).unwrap();
                assert_eq!(&decoded, instr);
                off += used;
            }
        }
    }
}

/// Decodes one terminator from the front of `bytes`, returning it and the
/// bytes consumed.
///
/// # Errors
///
/// Returns a [`DecodeError`] for truncated input or unknown opcodes.
pub fn decode_terminator(bytes: &[u8]) -> Result<(Terminator, usize), DecodeError> {
    use crate::program::FuncId;
    let op = *bytes.first().ok_or(DecodeError::Truncated)?;
    let need = |n: usize| {
        if bytes.len() < n {
            Err(DecodeError::Truncated)
        } else {
            Ok(())
        }
    };
    match op {
        OP_JUMP => {
            need(5)?;
            let t = u32::from_le_bytes(bytes[1..5].try_into().expect("4 bytes"));
            Ok((Terminator::Jump(BlockId(t)), 5))
        }
        _ if op & 0xF0 == OP_BRANCH => {
            need(6)?;
            let cond = cond_from(op & 0x0F).ok_or(DecodeError::BadOpcode(op))?;
            let (lhs, rhs) = split(bytes[1]);
            let taken = u16::from_le_bytes(bytes[2..4].try_into().expect("2 bytes"));
            let fallthrough = u16::from_le_bytes(bytes[4..6].try_into().expect("2 bytes"));
            Ok((
                Terminator::Branch {
                    cond,
                    lhs,
                    rhs,
                    taken: BlockId(u32::from(taken)),
                    fallthrough: BlockId(u32::from(fallthrough)),
                },
                6,
            ))
        }
        OP_CALL => {
            need(5)?;
            let callee = u16::from_le_bytes(bytes[1..3].try_into().expect("2 bytes"));
            let ret_to = u16::from_le_bytes(bytes[3..5].try_into().expect("2 bytes"));
            Ok((
                Terminator::Call {
                    callee: FuncId(u32::from(callee)),
                    ret_to: BlockId(u32::from(ret_to)),
                },
                5,
            ))
        }
        OP_RETURN => Ok((Terminator::Return, 1)),
        OP_INDIRECT => {
            need(3)?;
            let selector = Reg::new(bytes[1] & 0x0F);
            let count = bytes[2] as usize;
            need(3 + 4 * count)?;
            let mut targets = Vec::with_capacity(count);
            for i in 0..count {
                let off = 3 + 4 * i;
                targets.push(BlockId(u32::from_le_bytes(
                    bytes[off..off + 4].try_into().expect("4 bytes"),
                )));
            }
            Ok((
                Terminator::IndirectJump { selector, targets },
                3 + 4 * count,
            ))
        }
        OP_HALT => {
            need(2)?;
            Ok((Terminator::Halt, 2))
        }
        other => Err(DecodeError::BadOpcode(other)),
    }
}

#[cfg(test)]
mod terminator_decode_tests {
    use super::*;
    use crate::program::FuncId;

    #[test]
    fn terminators_roundtrip() {
        let cases = [
            Terminator::Jump(BlockId(70_000)),
            Terminator::Branch {
                cond: Cond::Ge,
                lhs: Reg::R9,
                rhs: Reg::R2,
                taken: BlockId(12),
                fallthrough: BlockId(13),
            },
            Terminator::Call {
                callee: FuncId(3),
                ret_to: BlockId(44),
            },
            Terminator::Return,
            Terminator::IndirectJump {
                selector: Reg::R5,
                targets: vec![BlockId(5), BlockId(6)],
            },
            Terminator::Halt,
        ];
        for t in &cases {
            let mut bytes = Vec::new();
            encode_terminator(t, &mut bytes).unwrap();
            let (back, used) = decode_terminator(&bytes).unwrap();
            assert_eq!(&back, t);
            assert_eq!(used, bytes.len());
        }
    }

    #[test]
    fn truncated_terminators_error() {
        assert_eq!(decode_terminator(&[]), Err(DecodeError::Truncated));
        assert_eq!(
            decode_terminator(&[OP_JUMP, 1]),
            Err(DecodeError::Truncated)
        );
        assert_eq!(
            decode_terminator(&[OP_INDIRECT, 1, 5]),
            Err(DecodeError::Truncated)
        );
        assert_eq!(
            decode_terminator(&[0xEE]),
            Err(DecodeError::BadOpcode(0xEE))
        );
    }
}
