//! Structured random program generation.
//!
//! These generators produce *terminating* programs with the control-flow
//! texture that code-cache studies depend on: hot loops (temporal locality),
//! call-heavy regions (many distinct blocks), data-dependent branches (both
//! superblock exits exercised), indirect jumps (unchainable exits), and a
//! phased main function (working-set shifts that stress eviction policies).
//!
//! All generation is deterministic given [`GenConfig::seed`].
//!
//! Termination is guaranteed structurally: every loop decrements a dedicated
//! counter register with a fixed trip count, and the register convention
//! keeps caller and callee counters disjoint — *phase* functions use
//! `r1..r4` for their loop nests, *leaf* functions use `r10..r13` and never
//! call.

use crate::builder::ProgramBuilder;
use crate::isa::{Cond, Instr, Reg};
use crate::program::{BlockId, FuncId, Program};
use cce_util::{Rng, StdRng};

/// Configuration for [`generate`].
#[derive(Debug, Clone, PartialEq)]
pub struct GenConfig {
    /// RNG seed: equal seeds give identical programs.
    pub seed: u64,
    /// Number of program phases (top-level working sets). Must be ≥ 1.
    pub phases: usize,
    /// Leaf functions reachable from each phase. Must be ≥ 1.
    pub leaf_funcs_per_phase: usize,
    /// Depth of the loop nest in each phase function (1..=3).
    pub loop_depth: usize,
    /// Inclusive range of loop trip counts.
    pub trip_counts: (i64, i64),
    /// Inclusive range of straight-line instructions per generated block.
    pub instrs_per_block: (usize, usize),
    /// Number of if/else diamonds in each leaf function body.
    pub diamonds_per_leaf: usize,
    /// Probability (0..=1) that a leaf ends with an indirect jump over its
    /// diamond joins rather than straight-line flow.
    pub indirect_prob: f64,
    /// Fraction (0..=1) of leaves shared between adjacent phases. Shared
    /// leaves create inter-phase reuse, softening the phase shift.
    pub phase_overlap: f64,
}

impl Default for GenConfig {
    fn default() -> GenConfig {
        GenConfig {
            seed: 0xC0DE_CAFE,
            phases: 4,
            leaf_funcs_per_phase: 8,
            loop_depth: 2,
            trip_counts: (3, 8),
            instrs_per_block: (4, 18),
            diamonds_per_leaf: 3,
            indirect_prob: 0.15,
            phase_overlap: 0.25,
        }
    }
}

impl GenConfig {
    /// A small configuration suitable for unit tests (fast to execute).
    #[must_use]
    pub fn small(seed: u64) -> GenConfig {
        GenConfig {
            seed,
            phases: 2,
            leaf_funcs_per_phase: 3,
            loop_depth: 1,
            trip_counts: (2, 4),
            instrs_per_block: (2, 6),
            diamonds_per_leaf: 2,
            indirect_prob: 0.2,
            phase_overlap: 0.5,
        }
    }

    fn validate(&self) {
        assert!(self.phases >= 1, "phases must be >= 1");
        assert!(self.leaf_funcs_per_phase >= 1, "need at least one leaf");
        assert!(
            (1..=3).contains(&self.loop_depth),
            "loop_depth must be in 1..=3"
        );
        assert!(
            self.trip_counts.0 >= 1 && self.trip_counts.1 >= self.trip_counts.0,
            "invalid trip counts"
        );
        assert!(
            self.instrs_per_block.0 >= 1 && self.instrs_per_block.1 >= self.instrs_per_block.0,
            "invalid instrs_per_block"
        );
        assert!((0.0..=1.0).contains(&self.indirect_prob));
        assert!((0.0..=1.0).contains(&self.phase_overlap));
    }
}

/// PRN scratch registers used to make branch outcomes data-dependent.
const PRN: Reg = Reg::R5;
const SCRATCH_A: Reg = Reg::R6;
const SCRATCH_B: Reg = Reg::R7;
const MEMPTR: Reg = Reg::R9;

struct Gen<'c> {
    cfg: &'c GenConfig,
    rng: StdRng,
    b: ProgramBuilder,
}

impl<'c> Gen<'c> {
    /// Emits `n` random straight-line instructions into `block`.
    fn fill_block(&mut self, block: BlockId, n: usize) {
        for _ in 0..n {
            let instr = match self.rng.gen_range(0..10) {
                // xorshift-style PRN churn: keeps branch selectors lively.
                0 => Instr::ShlImm {
                    dst: SCRATCH_A,
                    src: PRN,
                    amount: 13,
                },
                1 => Instr::Xor {
                    dst: PRN,
                    a: PRN,
                    b: SCRATCH_A,
                },
                2 => Instr::ShrImm {
                    dst: SCRATCH_B,
                    src: PRN,
                    amount: 7,
                },
                3 => Instr::Xor {
                    dst: PRN,
                    a: PRN,
                    b: SCRATCH_B,
                },
                4 => Instr::Add {
                    dst: SCRATCH_A,
                    a: SCRATCH_A,
                    b: SCRATCH_B,
                },
                5 => Instr::Mul {
                    dst: SCRATCH_B,
                    a: SCRATCH_B,
                    b: PRN,
                },
                6 => Instr::AddImm {
                    dst: MEMPTR,
                    src: MEMPTR,
                    imm: self.rng.gen_range(1..64i64),
                },
                7 => Instr::Load {
                    dst: SCRATCH_A,
                    base: MEMPTR,
                    offset: self.rng.gen_range(-32..32),
                },
                8 => Instr::Store {
                    src: SCRATCH_B,
                    base: MEMPTR,
                    offset: self.rng.gen_range(-32..32),
                },
                _ => Instr::MovImm {
                    dst: SCRATCH_B,
                    imm: self.rng.gen_range(-1000..1000i64),
                },
            };
            self.b.push(block, instr);
        }
    }

    fn block_size(&mut self) -> usize {
        let (lo, hi) = self.cfg.instrs_per_block;
        self.rng.gen_range(lo..=hi)
    }

    /// Builds one leaf function: a chain of if/else diamonds, optionally
    /// capped by an indirect jump, never calling anything. Loop counters use
    /// `r10` so leaves may loop without touching phase counters.
    fn gen_leaf(&mut self, name: &str) -> FuncId {
        let f = self.b.begin_function(name);
        let entry = self.b.block(f);
        let n = self.block_size();
        self.fill_block(entry, n);
        self.b.set_entry(f, entry);

        let mut cursor = entry;
        for _ in 0..self.cfg.diamonds_per_leaf {
            let then_b = self.b.block(f);
            let else_b = self.b.block(f);
            let join = self.b.block(f);
            // Branch on a PRN bit: both arms are exercised over time.
            self.b.push(
                cursor,
                Instr::ShrImm {
                    dst: SCRATCH_A,
                    src: PRN,
                    amount: self.rng.gen_range(0..8u8),
                },
            );
            self.b.push(
                cursor,
                Instr::MovImm {
                    dst: SCRATCH_B,
                    imm: 1,
                },
            );
            self.b.push(
                cursor,
                Instr::And {
                    dst: SCRATCH_A,
                    a: SCRATCH_A,
                    b: SCRATCH_B,
                },
            );
            self.b
                .branch(cursor, Cond::Eq, SCRATCH_A, Reg::ZERO, then_b, else_b);
            let tn = self.block_size();
            self.fill_block(then_b, tn);
            self.b.jump(then_b, join);
            let en = self.block_size();
            self.fill_block(else_b, en);
            self.b.jump(else_b, join);
            let jn = self.block_size();
            self.fill_block(join, jn);
            cursor = join;
        }

        if self.rng.gen_bool(self.cfg.indirect_prob) {
            // Indirect dispatch over a few small handler blocks.
            let cases = self.rng.gen_range(2..=4usize);
            let exit = self.b.block(f);
            let mut targets = Vec::with_capacity(cases);
            for _ in 0..cases {
                let t = self.b.block(f);
                let n = self.block_size();
                self.fill_block(t, n);
                self.b.jump(t, exit);
                targets.push(t);
            }
            self.b.indirect(cursor, PRN, targets);
            self.b.ret(exit);
        } else {
            self.b.ret(cursor);
        }
        f
    }

    /// Builds a phase function: a `loop_depth`-deep nest whose innermost
    /// body cycles through calls to the phase's leaf functions.
    fn gen_phase(&mut self, name: &str, leaves: &[FuncId]) -> FuncId {
        let f = self.b.begin_function(name);
        // Counter registers r1..r4 by nesting level.
        let counters = [Reg::R1, Reg::R2, Reg::R3, Reg::R4];
        let depth = self.cfg.loop_depth;
        let (tc_lo, tc_hi) = self.cfg.trip_counts;

        // Pre-create the loop scaffolding blocks per level: head / latch.
        let entry = self.b.block(f);
        self.b.set_entry(f, entry);
        let mut heads = Vec::new();
        let mut latches = Vec::new();
        for _ in 0..depth {
            heads.push(self.b.block(f));
            latches.push(self.b.block(f));
        }
        let exit = self.b.block(f);

        // entry: init outermost counter, jump to head 0.
        let trip0 = self.rng.gen_range(tc_lo..=tc_hi);
        self.b.push(
            entry,
            Instr::MovImm {
                dst: counters[0],
                imm: trip0,
            },
        );
        self.b.jump(entry, heads[0]);

        // Each head i (for i < depth-1) initializes counter i+1 then enters
        // head i+1. The innermost head runs the call sequence.
        for lvl in 0..depth {
            let head = heads[lvl];
            if lvl + 1 < depth {
                let trip = self.rng.gen_range(tc_lo..=tc_hi);
                self.b.push(
                    head,
                    Instr::MovImm {
                        dst: counters[lvl + 1],
                        imm: trip,
                    },
                );
                self.b.jump(head, heads[lvl + 1]);
            } else {
                // Innermost body: chain of calls to every leaf.
                let n = self.block_size();
                self.fill_block(head, n);
                let mut cursor = head;
                for &leaf in leaves {
                    let cont = self.b.block(f);
                    self.b.call(cursor, leaf, cont);
                    cursor = cont;
                }
                self.b.jump(cursor, latches[depth - 1]);
            }
        }

        // Latches: decrement own counter; loop back to own head or exit to
        // the enclosing latch (or function exit at the outermost level).
        for lvl in (0..depth).rev() {
            let latch = latches[lvl];
            self.b.push(
                latch,
                Instr::AddImm {
                    dst: counters[lvl],
                    src: counters[lvl],
                    imm: -1,
                },
            );
            let out = if lvl == 0 { exit } else { latches[lvl - 1] };
            self.b
                .branch(latch, Cond::Gt, counters[lvl], Reg::ZERO, heads[lvl], out);
        }
        self.b.ret(exit);
        f
    }

    fn run(mut self) -> Program {
        // Reserve main (FuncId 0): a chain of phase calls.
        let main = self.b.begin_function("main");

        // Generate leaves per phase with overlap: phase i shares the first
        // `overlap` leaves with phase i-1.
        let per = self.cfg.leaf_funcs_per_phase;
        let shared = ((per as f64) * self.cfg.phase_overlap).floor() as usize;
        let mut all_leaves: Vec<Vec<FuncId>> = Vec::with_capacity(self.cfg.phases);
        for p in 0..self.cfg.phases {
            let mut leaves = Vec::with_capacity(per);
            if p > 0 {
                let prev = &all_leaves[p - 1];
                leaves.extend(prev.iter().rev().take(shared).copied());
            }
            while leaves.len() < per {
                let name = format!("leaf_p{p}_{}", leaves.len());
                let f = self.gen_leaf(&name);
                leaves.push(f);
            }
            all_leaves.push(leaves);
        }

        let phase_funcs: Vec<FuncId> = all_leaves
            .iter()
            .enumerate()
            .map(|(p, leaves)| self.gen_phase(&format!("phase{p}"), leaves))
            .collect();

        // main: seed the PRN and memory pointer, call each phase in turn.
        let entry = self.b.block(main);
        self.b.push(
            entry,
            Instr::MovImm {
                dst: PRN,
                imm: self.rng.gen_range(1..i64::MAX / 2),
            },
        );
        self.b.push(
            entry,
            Instr::MovImm {
                dst: MEMPTR,
                imm: 0,
            },
        );
        self.b.set_entry(main, entry);
        let mut cursor = entry;
        for &pf in &phase_funcs {
            let cont = self.b.block(main);
            self.b.call(cursor, pf, cont);
            cursor = cont;
        }
        self.b.halt(cursor);

        self.b.finish().expect("generator emits valid programs")
    }
}

/// Generates a terminating phased program from `cfg`.
///
/// # Panics
///
/// Panics if `cfg` is internally inconsistent (see field docs).
///
/// # Example
///
/// ```
/// use cce_tinyvm::gen::{generate, GenConfig};
/// use cce_tinyvm::interp::{Interp, StopReason};
///
/// let program = generate(&GenConfig::small(7));
/// let mut interp = Interp::new(&program);
/// assert_eq!(interp.run(10_000_000), StopReason::Halted);
/// ```
#[must_use]
pub fn generate(cfg: &GenConfig) -> Program {
    cfg.validate();
    let gen = Gen {
        cfg,
        rng: StdRng::seed_from_u64(cfg.seed),
        b: ProgramBuilder::new(),
    };
    gen.run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{Interp, StopReason};

    #[test]
    fn generated_programs_terminate() {
        for seed in 0..8 {
            let p = generate(&GenConfig::small(seed));
            let mut i = Interp::new(&p);
            assert_eq!(
                i.run(50_000_000),
                StopReason::Halted,
                "seed {seed} did not halt"
            );
            assert!(i.blocks_entered() > 10, "seed {seed} barely ran");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&GenConfig::small(42));
        let b = generate(&GenConfig::small(42));
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&GenConfig::small(1));
        let b = generate(&GenConfig::small(2));
        assert_ne!(a, b);
    }

    #[test]
    fn default_config_has_many_blocks_and_functions() {
        let p = generate(&GenConfig::default());
        assert!(p.functions().len() > 10);
        assert!(p.block_count() > 100);
    }

    #[test]
    fn block_sizes_vary() {
        let p = generate(&GenConfig::default());
        let sizes: Vec<u32> = p.blocks().iter().map(|b| b.byte_len()).collect();
        let min = sizes.iter().min().unwrap();
        let max = sizes.iter().max().unwrap();
        assert!(max > min, "variable-size entries are required by the study");
    }

    #[test]
    fn phase_overlap_shares_leaves() {
        let mut cfg = GenConfig::small(3);
        cfg.phases = 3;
        cfg.leaf_funcs_per_phase = 4;
        cfg.phase_overlap = 0.5;
        let p = generate(&cfg);
        // 3 phases * 4 leaves with 2 shared between adjacent phases
        // = 4 + 2 + 2 unique leaves, + 3 phase funcs + main.
        let leaf_count = p
            .functions()
            .iter()
            .filter(|f| f.name.starts_with("leaf"))
            .count();
        assert_eq!(leaf_count, 4 + 2 + 2);
    }

    #[test]
    #[should_panic(expected = "phases must be >= 1")]
    fn zero_phases_rejected() {
        let mut cfg = GenConfig::small(0);
        cfg.phases = 0;
        let _ = generate(&cfg);
    }
}
