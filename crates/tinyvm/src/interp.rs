//! A deterministic block-stepping interpreter with observation hooks.
//!
//! The interpreter executes a [`Program`] basic block at a time. Before each
//! block's body runs, an optional [`ExecObserver`] is notified — this is the
//! hook the dynamic binary translator uses for execution profiling and
//! superblock formation without the interpreter knowing anything about
//! caching.

use crate::isa::{Instr, Reg};
use crate::program::{BasicBlock, BlockId, Pc, Program, Terminator};

/// Why [`Interp::run`] stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StopReason {
    /// The program executed a `Halt` terminator or returned from `main`.
    Halted,
    /// The fuel budget (maximum executed blocks) was exhausted.
    OutOfFuel,
    /// The call stack exceeded [`Interp::MAX_CALL_DEPTH`].
    StackOverflow,
}

/// Receives a callback at every basic-block entry.
///
/// Implementations must be cheap: the observer runs on the hot path of the
/// interpreter loop.
pub trait ExecObserver {
    /// Called when control enters `block`, whose layout address is `pc`.
    fn on_block_enter(&mut self, pc: Pc, block: &BasicBlock);
}

/// An observer that does nothing (used by the plain [`Interp::run`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl ExecObserver for NullObserver {
    fn on_block_enter(&mut self, _pc: Pc, _block: &BasicBlock) {}
}

/// Interpreter state over a borrowed [`Program`].
#[derive(Debug)]
pub struct Interp<'p> {
    program: &'p Program,
    regs: [i64; Reg::COUNT],
    memory: Vec<i64>,
    call_stack: Vec<BlockId>,
    current: Option<BlockId>,
    instructions_retired: u64,
    blocks_entered: u64,
}

impl<'p> Interp<'p> {
    /// Maximum call-stack depth before execution aborts with
    /// [`StopReason::StackOverflow`].
    pub const MAX_CALL_DEPTH: usize = 4096;

    /// Creates an interpreter positioned at the program's entry.
    #[must_use]
    pub fn new(program: &'p Program) -> Interp<'p> {
        Interp {
            program,
            regs: [0; Reg::COUNT],
            memory: vec![0; program.memory_words()],
            call_stack: Vec::new(),
            current: Some(program.function(program.main()).entry),
            instructions_retired: 0,
            blocks_entered: 0,
        }
    }

    /// Reads a register.
    #[must_use]
    pub fn reg(&self, r: Reg) -> i64 {
        self.regs[r.index()]
    }

    /// Writes a register (useful for seeding inputs in tests/examples).
    pub fn set_reg(&mut self, r: Reg, value: i64) {
        self.regs[r.index()] = value;
    }

    /// Reads guest memory at a word index (wrapped into bounds).
    #[must_use]
    pub fn mem(&self, word: usize) -> i64 {
        self.memory[word % self.memory.len()]
    }

    /// Total instructions retired so far (bodies + terminators).
    #[must_use]
    pub fn instructions_retired(&self) -> u64 {
        self.instructions_retired
    }

    /// Total basic blocks entered so far.
    #[must_use]
    pub fn blocks_entered(&self) -> u64 {
        self.blocks_entered
    }

    /// True if the machine has halted.
    #[must_use]
    pub fn is_halted(&self) -> bool {
        self.current.is_none()
    }

    /// Runs without observation until halt or `max_blocks` blocks execute.
    pub fn run(&mut self, max_blocks: u64) -> StopReason {
        self.run_observed(max_blocks, &mut NullObserver)
    }

    /// Runs until halt or `max_blocks` blocks execute, notifying `observer`
    /// at every block entry.
    pub fn run_observed(&mut self, max_blocks: u64, observer: &mut dyn ExecObserver) -> StopReason {
        for _ in 0..max_blocks {
            let Some(block_id) = self.current else {
                return StopReason::Halted;
            };
            let block = self.program.block(block_id);
            observer.on_block_enter(self.program.block_addr(block_id), block);
            self.blocks_entered += 1;
            for instr in &block.instrs {
                self.step_instr(instr);
            }
            self.instructions_retired += block.instrs.len() as u64 + 1;
            match self.step_terminator(block) {
                Ok(next) => self.current = next,
                Err(stop) => {
                    self.current = None;
                    return stop;
                }
            }
            if self.current.is_none() {
                return StopReason::Halted;
            }
        }
        if self.current.is_none() {
            StopReason::Halted
        } else {
            StopReason::OutOfFuel
        }
    }

    fn mem_index(&self, base: Reg, offset: i32) -> usize {
        let addr = self.regs[base.index()].wrapping_add(i64::from(offset));
        (addr.unsigned_abs() as usize) % self.memory.len()
    }

    fn step_instr(&mut self, instr: &Instr) {
        match *instr {
            Instr::MovImm { dst, imm } => self.regs[dst.index()] = imm,
            Instr::Mov { dst, src } => self.regs[dst.index()] = self.regs[src.index()],
            Instr::Add { dst, a, b } => {
                self.regs[dst.index()] = self.regs[a.index()].wrapping_add(self.regs[b.index()]);
            }
            Instr::AddImm { dst, src, imm } => {
                self.regs[dst.index()] = self.regs[src.index()].wrapping_add(imm);
            }
            Instr::Sub { dst, a, b } => {
                self.regs[dst.index()] = self.regs[a.index()].wrapping_sub(self.regs[b.index()]);
            }
            Instr::Mul { dst, a, b } => {
                self.regs[dst.index()] = self.regs[a.index()].wrapping_mul(self.regs[b.index()]);
            }
            Instr::Xor { dst, a, b } => {
                self.regs[dst.index()] = self.regs[a.index()] ^ self.regs[b.index()];
            }
            Instr::And { dst, a, b } => {
                self.regs[dst.index()] = self.regs[a.index()] & self.regs[b.index()];
            }
            Instr::Or { dst, a, b } => {
                self.regs[dst.index()] = self.regs[a.index()] | self.regs[b.index()];
            }
            Instr::ShlImm { dst, src, amount } => {
                self.regs[dst.index()] = self.regs[src.index()] << (amount & 63);
            }
            Instr::ShrImm { dst, src, amount } => {
                self.regs[dst.index()] = ((self.regs[src.index()] as u64) >> (amount & 63)) as i64;
            }
            Instr::Load { dst, base, offset } => {
                let idx = self.mem_index(base, offset);
                self.regs[dst.index()] = self.memory[idx];
            }
            Instr::Store { src, base, offset } => {
                let idx = self.mem_index(base, offset);
                self.memory[idx] = self.regs[src.index()];
            }
            Instr::Nop => {}
        }
    }

    fn step_terminator(&mut self, block: &BasicBlock) -> Result<Option<BlockId>, StopReason> {
        match &block.terminator {
            Terminator::Jump(t) => Ok(Some(*t)),
            Terminator::Branch {
                cond,
                lhs,
                rhs,
                taken,
                fallthrough,
            } => {
                let l = self.regs[lhs.index()];
                let r = self.regs[rhs.index()];
                Ok(Some(if cond.eval(l, r) {
                    *taken
                } else {
                    *fallthrough
                }))
            }
            Terminator::Call { callee, ret_to } => {
                if self.call_stack.len() >= Self::MAX_CALL_DEPTH {
                    return Err(StopReason::StackOverflow);
                }
                self.call_stack.push(*ret_to);
                Ok(Some(self.program.function(*callee).entry))
            }
            Terminator::Return => Ok(self.call_stack.pop()),
            Terminator::IndirectJump { selector, targets } => {
                let v = self.regs[selector.index()].unsigned_abs() as usize;
                Ok(Some(targets[v % targets.len()]))
            }
            Terminator::Halt => Err(StopReason::Halted),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::isa::Cond;

    fn countdown(n: i64) -> Program {
        let mut b = ProgramBuilder::new();
        let f = b.begin_function("main");
        let entry = b.block(f);
        let body = b.block(f);
        let done = b.block(f);
        b.push(
            entry,
            Instr::MovImm {
                dst: Reg::R1,
                imm: n,
            },
        );
        b.jump(entry, body);
        b.push(
            body,
            Instr::AddImm {
                dst: Reg::R1,
                src: Reg::R1,
                imm: -1,
            },
        );
        b.branch(body, Cond::Gt, Reg::R1, Reg::ZERO, body, done);
        b.halt(done);
        b.set_entry(f, entry);
        b.finish().unwrap()
    }

    #[test]
    fn countdown_halts_with_zero() {
        let p = countdown(100);
        let mut i = Interp::new(&p);
        assert_eq!(i.run(10_000), StopReason::Halted);
        assert_eq!(i.reg(Reg::R1), 0);
        // entry + 100 body iterations + done
        assert_eq!(i.blocks_entered(), 102);
    }

    #[test]
    fn fuel_limit_stops_execution() {
        let p = countdown(1_000_000);
        let mut i = Interp::new(&p);
        assert_eq!(i.run(10), StopReason::OutOfFuel);
        assert!(!i.is_halted());
        // Can resume.
        assert_eq!(i.run(u64::MAX), StopReason::Halted);
    }

    #[test]
    fn observer_sees_every_block() {
        struct Counter(u64);
        impl ExecObserver for Counter {
            fn on_block_enter(&mut self, _pc: Pc, _b: &BasicBlock) {
                self.0 += 1;
            }
        }
        let p = countdown(5);
        let mut i = Interp::new(&p);
        let mut c = Counter(0);
        i.run_observed(u64::MAX, &mut c);
        assert_eq!(c.0, i.blocks_entered());
    }

    #[test]
    fn call_and_return_flow() {
        let mut b = ProgramBuilder::new();
        let main = b.begin_function("main");
        let sq = b.begin_function("square");
        let m0 = b.block(main);
        let m1 = b.block(main);
        let s0 = b.block(sq);
        b.push(
            m0,
            Instr::MovImm {
                dst: Reg::R2,
                imm: 7,
            },
        );
        b.call(m0, sq, m1);
        b.halt(m1);
        b.push(
            s0,
            Instr::Mul {
                dst: Reg::R3,
                a: Reg::R2,
                b: Reg::R2,
            },
        );
        b.ret(s0);
        b.set_entry(main, m0);
        b.set_entry(sq, s0);
        let p = b.finish().unwrap();
        let mut i = Interp::new(&p);
        assert_eq!(i.run(100), StopReason::Halted);
        assert_eq!(i.reg(Reg::R3), 49);
    }

    #[test]
    fn return_from_main_halts() {
        let mut b = ProgramBuilder::new();
        let f = b.begin_function("main");
        let e = b.block(f);
        b.ret(e);
        b.set_entry(f, e);
        let p = b.finish().unwrap();
        let mut i = Interp::new(&p);
        assert_eq!(i.run(100), StopReason::Halted);
    }

    #[test]
    fn infinite_recursion_overflows() {
        let mut b = ProgramBuilder::new();
        let main = b.begin_function("main");
        let m0 = b.block(main);
        let m1 = b.block(main);
        b.call(m0, main, m1);
        b.halt(m1);
        b.set_entry(main, m0);
        let p = b.finish().unwrap();
        let mut i = Interp::new(&p);
        assert_eq!(i.run(u64::MAX), StopReason::StackOverflow);
    }

    #[test]
    fn indirect_jump_selects_by_register() {
        let mut b = ProgramBuilder::new();
        let f = b.begin_function("main");
        let e = b.block(f);
        let t0 = b.block(f);
        let t1 = b.block(f);
        let done = b.block(f);
        b.push(
            e,
            Instr::MovImm {
                dst: Reg::R1,
                imm: 1,
            },
        );
        b.indirect(e, Reg::R1, vec![t0, t1]);
        b.push(
            t0,
            Instr::MovImm {
                dst: Reg::R5,
                imm: 100,
            },
        );
        b.jump(t0, done);
        b.push(
            t1,
            Instr::MovImm {
                dst: Reg::R5,
                imm: 200,
            },
        );
        b.jump(t1, done);
        b.halt(done);
        b.set_entry(f, e);
        let p = b.finish().unwrap();
        let mut i = Interp::new(&p);
        i.run(100);
        assert_eq!(i.reg(Reg::R5), 200);
    }

    #[test]
    fn memory_load_store_roundtrip() {
        let mut b = ProgramBuilder::new();
        let f = b.begin_function("main");
        let e = b.block(f);
        b.push(
            e,
            Instr::MovImm {
                dst: Reg::R1,
                imm: 16,
            },
        );
        b.push(
            e,
            Instr::MovImm {
                dst: Reg::R2,
                imm: 1234,
            },
        );
        b.push(
            e,
            Instr::Store {
                src: Reg::R2,
                base: Reg::R1,
                offset: 4,
            },
        );
        b.push(
            e,
            Instr::Load {
                dst: Reg::R3,
                base: Reg::R1,
                offset: 4,
            },
        );
        b.halt(e);
        b.set_entry(f, e);
        let p = b.finish().unwrap();
        let mut i = Interp::new(&p);
        i.run(10);
        assert_eq!(i.reg(Reg::R3), 1234);
        assert_eq!(i.mem(20), 1234);
    }

    #[test]
    fn deterministic_replay() {
        let p = countdown(50);
        let run = |p: &Program| {
            let mut i = Interp::new(p);
            i.run(u64::MAX);
            (i.instructions_retired(), i.blocks_entered(), i.reg(Reg::R1))
        };
        assert_eq!(run(&p), run(&p));
    }
}
