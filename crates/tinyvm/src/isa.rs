//! The TinyVM instruction set.
//!
//! TinyVM is a 16-register, 64-bit, load/store machine with variable-length
//! instruction encodings. The variable encoding matters: the code-cache
//! study depends on superblocks having realistic, *variable* byte sizes
//! (paper §3.3), and the encoded length of each instruction is what gives a
//! basic block — and therefore a superblock — its size in bytes.
//!
//! Control flow (jumps, branches, calls, returns) is *not* represented as
//! ordinary instructions; it lives in [`crate::program::Terminator`] so that
//! basic-block boundaries are explicit by construction.

use std::fmt;

/// A general-purpose register, `r0`–`r15`.
///
/// `r0` ([`Reg::ZERO`]) is conventionally used as an always-zero source by
/// the program generators, though the ISA itself does not enforce that.
///
/// # Example
///
/// ```
/// use cce_tinyvm::isa::Reg;
/// assert_eq!(Reg::R3.index(), 3);
/// assert_eq!(format!("{}", Reg::R3), "r3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

impl Reg {
    /// Conventional always-zero register (`r0`).
    pub const ZERO: Reg = Reg(0);
    pub const R1: Reg = Reg(1);
    pub const R2: Reg = Reg(2);
    pub const R3: Reg = Reg(3);
    pub const R4: Reg = Reg(4);
    pub const R5: Reg = Reg(5);
    pub const R6: Reg = Reg(6);
    pub const R7: Reg = Reg(7);
    pub const R8: Reg = Reg(8);
    pub const R9: Reg = Reg(9);
    pub const R10: Reg = Reg(10);
    pub const R11: Reg = Reg(11);
    pub const R12: Reg = Reg(12);
    pub const R13: Reg = Reg(13);
    pub const R14: Reg = Reg(14);
    pub const R15: Reg = Reg(15);

    /// Number of architectural registers.
    pub const COUNT: usize = 16;

    /// Creates a register from an index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= Reg::COUNT`.
    #[must_use]
    pub fn new(index: u8) -> Reg {
        assert!(
            (index as usize) < Reg::COUNT,
            "register index {index} out of range"
        );
        Reg(index)
    }

    /// The register's index in the register file.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A branch condition comparing two registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cond {
    /// `lhs == rhs`
    Eq,
    /// `lhs != rhs`
    Ne,
    /// `lhs < rhs` (signed)
    Lt,
    /// `lhs <= rhs` (signed)
    Le,
    /// `lhs > rhs` (signed)
    Gt,
    /// `lhs >= rhs` (signed)
    Ge,
}

impl Cond {
    /// Evaluates the condition on two signed values.
    ///
    /// # Example
    ///
    /// ```
    /// use cce_tinyvm::isa::Cond;
    /// assert!(Cond::Lt.eval(-1, 0));
    /// assert!(!Cond::Gt.eval(-1, 0));
    /// ```
    #[must_use]
    pub fn eval(self, lhs: i64, rhs: i64) -> bool {
        match self {
            Cond::Eq => lhs == rhs,
            Cond::Ne => lhs != rhs,
            Cond::Lt => lhs < rhs,
            Cond::Le => lhs <= rhs,
            Cond::Gt => lhs > rhs,
            Cond::Ge => lhs >= rhs,
        }
    }

    /// The condition that is true exactly when `self` is false.
    #[must_use]
    pub fn negate(self) -> Cond {
        match self {
            Cond::Eq => Cond::Ne,
            Cond::Ne => Cond::Eq,
            Cond::Lt => Cond::Ge,
            Cond::Le => Cond::Gt,
            Cond::Gt => Cond::Le,
            Cond::Ge => Cond::Lt,
        }
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Cond::Eq => "eq",
            Cond::Ne => "ne",
            Cond::Lt => "lt",
            Cond::Le => "le",
            Cond::Gt => "gt",
            Cond::Ge => "ge",
        };
        f.write_str(s)
    }
}

/// A non-control-flow TinyVM instruction.
///
/// All arithmetic is wrapping two's-complement. Memory operands address a
/// flat word (64-bit) array; the interpreter wraps addresses into the
/// allocated memory so generated programs can never fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instr {
    /// `dst = imm`
    MovImm { dst: Reg, imm: i64 },
    /// `dst = src`
    Mov { dst: Reg, src: Reg },
    /// `dst = a + b`
    Add { dst: Reg, a: Reg, b: Reg },
    /// `dst = src + imm`
    AddImm { dst: Reg, src: Reg, imm: i64 },
    /// `dst = a - b`
    Sub { dst: Reg, a: Reg, b: Reg },
    /// `dst = a * b`
    Mul { dst: Reg, a: Reg, b: Reg },
    /// `dst = a ^ b`
    Xor { dst: Reg, a: Reg, b: Reg },
    /// `dst = a & b`
    And { dst: Reg, a: Reg, b: Reg },
    /// `dst = a | b`
    Or { dst: Reg, a: Reg, b: Reg },
    /// `dst = src << amount` (amount masked to 0..63)
    ShlImm { dst: Reg, src: Reg, amount: u8 },
    /// `dst = src >> amount` logical (amount masked to 0..63)
    ShrImm { dst: Reg, src: Reg, amount: u8 },
    /// `dst = mem[base + offset]`
    Load { dst: Reg, base: Reg, offset: i32 },
    /// `mem[base + offset] = src`
    Store { src: Reg, base: Reg, offset: i32 },
    /// No operation.
    Nop,
}

impl Instr {
    /// The encoded length of this instruction in bytes.
    ///
    /// The encoding is x86-flavoured: immediates and memory operands cost
    /// extra bytes. These lengths determine basic-block (and ultimately
    /// superblock) byte sizes throughout the workspace.
    #[must_use]
    pub fn encoded_len(&self) -> u32 {
        match self {
            Instr::MovImm { imm, .. } => {
                if i32::try_from(*imm).is_ok() {
                    5
                } else {
                    9
                }
            }
            Instr::Mov { .. } => 2,
            Instr::Add { .. }
            | Instr::Sub { .. }
            | Instr::Xor { .. }
            | Instr::And { .. }
            | Instr::Or { .. } => 3,
            Instr::Mul { .. } => 4,
            Instr::AddImm { .. } => 4,
            Instr::ShlImm { .. } | Instr::ShrImm { .. } => 3,
            Instr::Load { .. } | Instr::Store { .. } => 4,
            Instr::Nop => 1,
        }
    }

    /// The register written by this instruction, if any.
    #[must_use]
    pub fn def(&self) -> Option<Reg> {
        match *self {
            Instr::MovImm { dst, .. }
            | Instr::Mov { dst, .. }
            | Instr::Add { dst, .. }
            | Instr::AddImm { dst, .. }
            | Instr::Sub { dst, .. }
            | Instr::Mul { dst, .. }
            | Instr::Xor { dst, .. }
            | Instr::And { dst, .. }
            | Instr::Or { dst, .. }
            | Instr::ShlImm { dst, .. }
            | Instr::ShrImm { dst, .. }
            | Instr::Load { dst, .. } => Some(dst),
            Instr::Store { .. } | Instr::Nop => None,
        }
    }

    /// The registers read by this instruction.
    #[must_use]
    pub fn uses(&self) -> Vec<Reg> {
        match *self {
            Instr::MovImm { .. } | Instr::Nop => vec![],
            Instr::Mov { src, .. } => vec![src],
            Instr::Add { a, b, .. }
            | Instr::Sub { a, b, .. }
            | Instr::Mul { a, b, .. }
            | Instr::Xor { a, b, .. }
            | Instr::And { a, b, .. }
            | Instr::Or { a, b, .. } => vec![a, b],
            Instr::AddImm { src, .. } => vec![src],
            Instr::ShlImm { src, .. } | Instr::ShrImm { src, .. } => vec![src],
            Instr::Load { base, .. } => vec![base],
            Instr::Store { src, base, .. } => vec![src, base],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_roundtrip_and_display() {
        for i in 0..Reg::COUNT as u8 {
            let r = Reg::new(i);
            assert_eq!(r.index(), i as usize);
            assert_eq!(format!("{r}"), format!("r{i}"));
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn reg_out_of_range_panics() {
        let _ = Reg::new(16);
    }

    #[test]
    fn cond_eval_matrix() {
        let cases: [(Cond, i64, i64, bool); 12] = [
            (Cond::Eq, 3, 3, true),
            (Cond::Eq, 3, 4, false),
            (Cond::Ne, 3, 4, true),
            (Cond::Ne, 4, 4, false),
            (Cond::Lt, -5, 0, true),
            (Cond::Lt, 0, 0, false),
            (Cond::Le, 0, 0, true),
            (Cond::Le, 1, 0, false),
            (Cond::Gt, 1, 0, true),
            (Cond::Gt, 0, 0, false),
            (Cond::Ge, 0, 0, true),
            (Cond::Ge, -1, 0, false),
        ];
        for (c, l, r, want) in cases {
            assert_eq!(c.eval(l, r), want, "{c} {l} {r}");
        }
    }

    #[test]
    fn cond_negation_is_involutive_and_exclusive() {
        let all = [Cond::Eq, Cond::Ne, Cond::Lt, Cond::Le, Cond::Gt, Cond::Ge];
        for c in all {
            assert_eq!(c.negate().negate(), c);
            for (l, r) in [(0i64, 0i64), (1, 2), (-3, 7), (i64::MAX, i64::MIN)] {
                assert_ne!(c.eval(l, r), c.negate().eval(l, r));
            }
        }
    }

    #[test]
    fn encoded_lengths_are_positive_and_vary() {
        let short = Instr::Nop.encoded_len();
        let long = Instr::MovImm {
            dst: Reg::R1,
            imm: i64::MAX,
        }
        .encoded_len();
        assert!(short >= 1);
        assert!(long > short, "immediate width must affect encoding");
        let small_imm = Instr::MovImm {
            dst: Reg::R1,
            imm: 42,
        };
        assert_eq!(small_imm.encoded_len(), 5);
    }

    #[test]
    fn def_use_sets_are_consistent() {
        let i = Instr::Add {
            dst: Reg::R1,
            a: Reg::R2,
            b: Reg::R3,
        };
        assert_eq!(i.def(), Some(Reg::R1));
        assert_eq!(i.uses(), vec![Reg::R2, Reg::R3]);
        let s = Instr::Store {
            src: Reg::R4,
            base: Reg::R5,
            offset: 8,
        };
        assert_eq!(s.def(), None);
        assert_eq!(s.uses(), vec![Reg::R4, Reg::R5]);
    }
}
