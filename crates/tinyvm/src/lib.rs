//! # cce-tinyvm — a tiny register virtual machine for DBT studies
//!
//! This crate provides the *guest architecture* substrate for the code-cache
//! eviction study: a small register ISA ([`isa`]), byte-addressed programs
//! with an explicit control-flow graph ([`program`]), a builder for
//! constructing well-formed programs ([`builder`]), a deterministic
//! interpreter with observation hooks ([`interp`]), structured random
//! program generators ([`gen`]), and a disassembler ([`disasm`]).
//!
//! The paper this workspace reproduces drove its cache simulator with the
//! verbose logs of DynamoRIO executing real binaries. We do not have real
//! binaries, so this crate stands in for "the guest program": it produces
//! executable control flow with loops, calls, phases and data-dependent
//! branches, which `cce-dbt` then profiles, forms into superblocks and
//! caches — yielding the same kind of access/link trace the paper used.
//!
//! # Example
//!
//! ```
//! use cce_tinyvm::builder::ProgramBuilder;
//! use cce_tinyvm::interp::{Interp, StopReason};
//! use cce_tinyvm::isa::{Cond, Instr, Reg};
//!
//! // A program that counts r1 from 10 down to 0.
//! let mut b = ProgramBuilder::new();
//! let f = b.begin_function("main");
//! let entry = b.block(f);
//! let body = b.block(f);
//! let done = b.block(f);
//! b.push(entry, Instr::MovImm { dst: Reg::R1, imm: 10 });
//! b.jump(entry, body);
//! b.push(body, Instr::AddImm { dst: Reg::R1, src: Reg::R1, imm: -1 });
//! b.branch(body, Cond::Gt, Reg::R1, Reg::ZERO, body, done);
//! b.halt(done);
//! b.set_entry(f, entry);
//! let program = b.finish().expect("valid program");
//!
//! let mut interp = Interp::new(&program);
//! let stop = interp.run(1_000_000);
//! assert_eq!(stop, StopReason::Halted);
//! assert_eq!(interp.reg(Reg::R1), 0);
//! ```

#![deny(unsafe_code)]

pub mod builder;
pub mod disasm;
pub mod encode;
pub mod gen;
pub mod interp;
pub mod isa;
pub mod program;

pub use builder::ProgramBuilder;
pub use interp::{ExecObserver, Interp, StopReason};
pub use isa::{Cond, Instr, Reg};
pub use program::{BasicBlock, BlockId, FuncId, Pc, Program, Terminator};
