//! Programs, functions, basic blocks and the byte-address layout.
//!
//! A [`Program`] is a set of functions, each a list of [`BasicBlock`]s with
//! explicit [`Terminator`]s. After construction the program is *laid out*:
//! every block receives a byte address ([`Pc`]) as if the program had been
//! assembled into a flat image, and every block knows its encoded byte
//! length. Those addresses and lengths are exactly what the dynamic binary
//! translator profiles and what gives superblocks their variable sizes.

use crate::isa::{Cond, Instr, Reg};
use std::collections::BTreeMap;
use std::fmt;

/// A byte address in the guest program image.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Pc(pub u64);

impl Pc {
    /// The raw address value.
    #[must_use]
    pub fn addr(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Pc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#08x}", self.0)
    }
}

/// Identifies a function within a [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FuncId(pub u32);

/// Identifies a basic block within a [`Program`] (globally unique, not
/// per-function).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub u32);

/// How control leaves a basic block.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Terminator {
    /// Unconditional jump to another block.
    Jump(BlockId),
    /// Two-way conditional branch comparing `lhs` against `rhs`.
    Branch {
        cond: Cond,
        lhs: Reg,
        rhs: Reg,
        taken: BlockId,
        fallthrough: BlockId,
    },
    /// Call `callee`; on return, continue at `ret_to`.
    Call { callee: FuncId, ret_to: BlockId },
    /// Return to the caller's `ret_to` block (or halt from `main`).
    Return,
    /// Indirect jump: `targets[reg % targets.len()]`.
    ///
    /// Models switch statements / indirect branches, which in a DBT become
    /// superblock exits that cannot be statically chained.
    IndirectJump {
        selector: Reg,
        targets: Vec<BlockId>,
    },
    /// Stop the machine.
    Halt,
}

impl Terminator {
    /// Encoded byte length of the terminator in the program image.
    #[must_use]
    pub fn encoded_len(&self) -> u32 {
        match self {
            Terminator::Jump(_) => 5,
            Terminator::Branch { .. } => 6,
            Terminator::Call { .. } => 5,
            Terminator::Return => 1,
            Terminator::IndirectJump { targets, .. } => 3 + 4 * targets.len() as u32,
            Terminator::Halt => 2,
        }
    }

    /// All statically-known successor blocks.
    #[must_use]
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Jump(t) => vec![*t],
            Terminator::Branch {
                taken, fallthrough, ..
            } => vec![*taken, *fallthrough],
            Terminator::Call { ret_to, .. } => vec![*ret_to],
            Terminator::IndirectJump { targets, .. } => targets.clone(),
            Terminator::Return | Terminator::Halt => vec![],
        }
    }
}

/// A straight-line sequence of instructions ending in a [`Terminator`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BasicBlock {
    /// Globally unique id.
    pub id: BlockId,
    /// The function this block belongs to.
    pub func: FuncId,
    /// Straight-line body.
    pub instrs: Vec<Instr>,
    /// The block's terminator.
    pub terminator: Terminator,
}

impl BasicBlock {
    /// Encoded byte length of the whole block (body + terminator).
    #[must_use]
    pub fn byte_len(&self) -> u32 {
        self.instrs.iter().map(Instr::encoded_len).sum::<u32>() + self.terminator.encoded_len()
    }

    /// Number of instructions including the terminator.
    #[must_use]
    pub fn instr_count(&self) -> u32 {
        self.instrs.len() as u32 + 1
    }
}

/// A function: a named entry block plus the blocks it owns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Function {
    /// The function's id.
    pub id: FuncId,
    /// Human-readable name (for disassembly).
    pub name: String,
    /// Entry block.
    pub entry: BlockId,
    /// Blocks owned by this function, in layout order.
    pub blocks: Vec<BlockId>,
}

/// A complete, laid-out TinyVM program.
///
/// Construct via [`crate::builder::ProgramBuilder`]; the builder validates
/// the CFG and computes the layout. All lookups here are O(1)/O(log n).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    pub(crate) functions: Vec<Function>,
    pub(crate) blocks: Vec<BasicBlock>,
    /// Byte address of each block, indexed by `BlockId`.
    pub(crate) block_addr: Vec<Pc>,
    /// Map from byte address back to block, for PC-based lookup.
    pub(crate) addr_to_block: BTreeMap<Pc, BlockId>,
    pub(crate) main: FuncId,
    /// Number of 64-bit words of guest data memory.
    pub(crate) memory_words: usize,
    pub(crate) image_len: u64,
}

impl Program {
    /// The function executed first.
    #[must_use]
    pub fn main(&self) -> FuncId {
        self.main
    }

    /// The entry `Pc` of the program (entry block of `main`).
    #[must_use]
    pub fn entry_pc(&self) -> Pc {
        self.block_addr(self.function(self.main).entry)
    }

    /// All functions in layout order.
    #[must_use]
    pub fn functions(&self) -> &[Function] {
        &self.functions
    }

    /// Looks up a function by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this program.
    #[must_use]
    pub fn function(&self, id: FuncId) -> &Function {
        &self.functions[id.0 as usize]
    }

    /// All basic blocks, indexable by [`BlockId`].
    #[must_use]
    pub fn blocks(&self) -> &[BasicBlock] {
        &self.blocks
    }

    /// Looks up a block by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this program.
    #[must_use]
    pub fn block(&self, id: BlockId) -> &BasicBlock {
        &self.blocks[id.0 as usize]
    }

    /// The byte address assigned to `id` by the layout.
    #[must_use]
    pub fn block_addr(&self, id: BlockId) -> Pc {
        self.block_addr[id.0 as usize]
    }

    /// The block starting exactly at `pc`, if any.
    #[must_use]
    pub fn block_at(&self, pc: Pc) -> Option<BlockId> {
        self.addr_to_block.get(&pc).copied()
    }

    /// Total encoded length of the program image in bytes.
    #[must_use]
    pub fn image_len(&self) -> u64 {
        self.image_len
    }

    /// Words of guest data memory the interpreter should allocate.
    #[must_use]
    pub fn memory_words(&self) -> usize {
        self.memory_words
    }

    /// Number of basic blocks.
    #[must_use]
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Static successors of a block (branch targets; returns excluded).
    #[must_use]
    pub fn successors(&self, id: BlockId) -> Vec<BlockId> {
        self.block(id).terminator.successors()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;

    fn two_block_program() -> Program {
        let mut b = ProgramBuilder::new();
        let f = b.begin_function("main");
        let e = b.block(f);
        let x = b.block(f);
        b.push(
            e,
            Instr::MovImm {
                dst: Reg::R1,
                imm: 1,
            },
        );
        b.jump(e, x);
        b.halt(x);
        b.set_entry(f, e);
        b.finish().unwrap()
    }

    #[test]
    fn layout_assigns_increasing_addresses() {
        let p = two_block_program();
        let addrs: Vec<u64> = (0..p.block_count())
            .map(|i| p.block_addr(BlockId(i as u32)).addr())
            .collect();
        let mut sorted = addrs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), addrs.len(), "addresses must be unique");
    }

    #[test]
    fn block_at_inverts_block_addr() {
        let p = two_block_program();
        for blk in p.blocks() {
            let pc = p.block_addr(blk.id);
            assert_eq!(p.block_at(pc), Some(blk.id));
        }
        assert_eq!(p.block_at(Pc(u64::MAX)), None);
    }

    #[test]
    fn image_len_covers_all_blocks() {
        let p = two_block_program();
        let sum: u64 = p.blocks().iter().map(|b| u64::from(b.byte_len())).sum();
        assert!(p.image_len() >= sum);
        let last = p
            .blocks()
            .iter()
            .map(|b| p.block_addr(b.id).addr() + u64::from(b.byte_len()))
            .max()
            .unwrap();
        assert_eq!(p.image_len(), last);
    }

    #[test]
    fn terminator_lengths_and_successors() {
        let t = Terminator::IndirectJump {
            selector: Reg::R2,
            targets: vec![BlockId(0), BlockId(1), BlockId(2)],
        };
        assert_eq!(t.encoded_len(), 3 + 12);
        assert_eq!(t.successors().len(), 3);
        assert!(Terminator::Return.successors().is_empty());
    }

    #[test]
    fn programs_compare_structurally() {
        // Layout and lookup tables participate in equality, so two
        // independently built identical programs compare equal.
        assert_eq!(two_block_program(), two_block_program());
    }
}
