//! Randomized tests over the VM substrate: every generated program must
//! terminate, replay deterministically, and keep its layout invariants.
//!
//! Seeded (deterministic) random exploration with [`cce_util::StdRng`]
//! replaces the old proptest harness — the build environment is offline.

use cce_tinyvm::disasm::format_program;
use cce_tinyvm::gen::{generate, GenConfig};
use cce_tinyvm::interp::{Interp, StopReason};
use cce_tinyvm::program::BlockId;
use cce_util::{Rng, StdRng};

/// Draws a random generator configuration over the same parameter ranges
/// the old proptest strategy explored.
fn random_config(rng: &mut StdRng) -> GenConfig {
    GenConfig {
        seed: rng.gen_range(0..u64::MAX),
        phases: rng.gen_range(1..4usize),
        leaf_funcs_per_phase: rng.gen_range(1..6usize),
        loop_depth: rng.gen_range(1..3usize),
        trip_counts: (2, rng.gen_range(2..6i64)),
        instrs_per_block: (1, rng.gen_range(1..8usize)),
        diamonds_per_leaf: rng.gen_range(0..4usize),
        indirect_prob: rng.gen_range(0.0..0.5f64),
        phase_overlap: rng.gen_range(0.0..0.9f64),
    }
}

fn for_each_config(base_seed: u64, cases: u32, mut check: impl FnMut(&GenConfig)) {
    for case in 0..cases {
        let mut rng = StdRng::seed_from_u64(base_seed ^ u64::from(case));
        let cfg = random_config(&mut rng);
        check(&cfg);
    }
}

#[test]
fn generated_programs_always_terminate() {
    for_each_config(0x7E51_0001, 48, |cfg| {
        let program = generate(cfg);
        let mut interp = Interp::new(&program);
        assert_eq!(interp.run(100_000_000), StopReason::Halted, "{cfg:?}");
        assert!(interp.blocks_entered() > 0, "{cfg:?}");
    });
}

#[test]
fn execution_is_deterministic() {
    for_each_config(0x7E51_0002, 48, |cfg| {
        let program = generate(cfg);
        let run = || {
            let mut i = Interp::new(&program);
            i.run(100_000_000);
            (i.instructions_retired(), i.blocks_entered())
        };
        assert_eq!(run(), run(), "{cfg:?}");
    });
}

#[test]
fn layout_is_injective_and_within_image() {
    for_each_config(0x7E51_0003, 48, |cfg| {
        let program = generate(cfg);
        let mut addrs = Vec::new();
        for block in program.blocks() {
            let a = program.block_addr(block.id);
            assert_eq!(program.block_at(a), Some(block.id), "{cfg:?}");
            assert!(
                a.addr() + u64::from(block.byte_len()) <= program.image_len(),
                "{cfg:?}"
            );
            addrs.push(a);
        }
        let n = addrs.len();
        addrs.sort_unstable();
        addrs.dedup();
        assert_eq!(addrs.len(), n, "{cfg:?}");
    });
}

#[test]
fn successors_stay_within_the_function() {
    for_each_config(0x7E51_0004, 48, |cfg| {
        let program = generate(cfg);
        for block in program.blocks() {
            for succ in program.successors(block.id) {
                assert_eq!(
                    program.block(succ).func,
                    block.func,
                    "branch crossed a function boundary: {cfg:?}"
                );
            }
        }
    });
}

#[test]
fn regenerated_programs_execute_identically() {
    // Generation is a pure function of the config, so a rebuilt program
    // must compare equal and retire the same instruction stream — the
    // replay guarantee trace files rely on.
    for_each_config(0x7E51_0005, 48, |cfg| {
        let program = generate(cfg);
        let again = generate(cfg);
        assert_eq!(program, again, "{cfg:?}");
        let mut a = Interp::new(&program);
        let mut b = Interp::new(&again);
        a.run(5_000_000);
        b.run(5_000_000);
        assert_eq!(
            a.instructions_retired(),
            b.instructions_retired(),
            "{cfg:?}"
        );
    });
}

#[test]
fn disassembly_mentions_every_function() {
    for_each_config(0x7E51_0006, 48, |cfg| {
        let program = generate(cfg);
        let text = format_program(&program);
        for f in program.functions() {
            let needle = format!("fn {}", f.name);
            assert!(text.contains(&needle), "missing {needle}: {cfg:?}");
        }
    });
}

#[test]
fn block_ids_are_dense() {
    for_each_config(0x7E51_0007, 48, |cfg| {
        let program = generate(cfg);
        for (i, block) in program.blocks().iter().enumerate() {
            assert_eq!(block.id, BlockId(i as u32), "{cfg:?}");
        }
    });
}
