//! Property-based tests over the VM substrate: every generated program
//! must terminate, replay deterministically, survive serialization, and
//! keep its layout invariants.

use cce_tinyvm::disasm::format_program;
use cce_tinyvm::gen::{generate, GenConfig};
use cce_tinyvm::interp::{Interp, StopReason};
use cce_tinyvm::program::BlockId;
use proptest::prelude::*;

fn config_strategy() -> impl Strategy<Value = GenConfig> {
    (
        any::<u64>(),
        1usize..4,
        1usize..6,
        1usize..3,
        2i64..6,
        1usize..8,
        0usize..4,
        0.0f64..0.5,
        0.0f64..0.9,
    )
        .prop_map(
            |(seed, phases, leaves, depth, trip_hi, instrs_hi, diamonds, indirect, overlap)| {
                GenConfig {
                    seed,
                    phases,
                    leaf_funcs_per_phase: leaves,
                    loop_depth: depth,
                    trip_counts: (2, trip_hi),
                    instrs_per_block: (1, instrs_hi),
                    diamonds_per_leaf: diamonds,
                    indirect_prob: indirect,
                    phase_overlap: overlap,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn generated_programs_always_terminate(cfg in config_strategy()) {
        let program = generate(&cfg);
        let mut interp = Interp::new(&program);
        prop_assert_eq!(interp.run(100_000_000), StopReason::Halted);
        prop_assert!(interp.blocks_entered() > 0);
    }

    #[test]
    fn execution_is_deterministic(cfg in config_strategy()) {
        let program = generate(&cfg);
        let run = || {
            let mut i = Interp::new(&program);
            i.run(100_000_000);
            (i.instructions_retired(), i.blocks_entered())
        };
        prop_assert_eq!(run(), run());
    }

    #[test]
    fn layout_is_injective_and_within_image(cfg in config_strategy()) {
        let program = generate(&cfg);
        let mut addrs = Vec::new();
        for block in program.blocks() {
            let a = program.block_addr(block.id);
            prop_assert_eq!(program.block_at(a), Some(block.id));
            prop_assert!(a.addr() + u64::from(block.byte_len()) <= program.image_len());
            addrs.push(a);
        }
        let n = addrs.len();
        addrs.sort_unstable();
        addrs.dedup();
        prop_assert_eq!(addrs.len(), n);
    }

    #[test]
    fn successors_stay_within_the_function(cfg in config_strategy()) {
        let program = generate(&cfg);
        for block in program.blocks() {
            for succ in program.successors(block.id) {
                prop_assert_eq!(
                    program.block(succ).func,
                    block.func,
                    "branch crossed a function boundary"
                );
            }
        }
    }

    #[test]
    fn serde_roundtrip_preserves_execution(cfg in config_strategy()) {
        let program = generate(&cfg);
        let json = serde_json::to_string(&program).expect("serialize");
        let back: cce_tinyvm::Program = serde_json::from_str(&json).expect("deserialize");
        prop_assert_eq!(&program, &back);
        let mut a = Interp::new(&program);
        let mut b = Interp::new(&back);
        a.run(5_000_000);
        b.run(5_000_000);
        prop_assert_eq!(a.instructions_retired(), b.instructions_retired());
    }

    #[test]
    fn disassembly_mentions_every_function(cfg in config_strategy()) {
        let program = generate(&cfg);
        let text = format_program(&program);
        for f in program.functions() {
            let needle = format!("fn {}", f.name);
            prop_assert!(text.contains(&needle), "missing {needle}");
        }
    }

    #[test]
    fn block_ids_are_dense(cfg in config_strategy()) {
        let program = generate(&cfg);
        for (i, block) in program.blocks().iter().enumerate() {
            prop_assert_eq!(block.id, BlockId(i as u32));
        }
    }
}
