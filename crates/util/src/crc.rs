//! CRC-32 (ISO-HDLC), the per-chunk integrity check of the binary trace
//! format (DESIGN.md §11).
//!
//! The reflected polynomial `0xEDB88320` with init/xorout `0xFFFFFFFF` —
//! the same parameters as zlib's `crc32`, so saved traces can be checked
//! with standard tooling. Table-driven, one 256-entry LUT computed at
//! compile time; no external crates.

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

const TABLE: [u32; 256] = build_table();

/// Incremental CRC-32 state, for hashing a stream in pieces.
#[derive(Debug, Clone, Copy)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Crc32 {
        Crc32::new()
    }
}

impl Crc32 {
    /// A fresh checksum (init value `0xFFFFFFFF`).
    #[must_use]
    pub fn new() -> Crc32 {
        Crc32 { state: !0 }
    }

    /// Folds `bytes` into the running checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut crc = self.state;
        for &b in bytes {
            crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xff) as usize];
        }
        self.state = crc;
    }

    /// The final checksum (xorout applied); the state remains usable.
    #[must_use]
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

/// One-shot CRC-32 of `bytes`.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The standard check value for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn incremental_matches_one_shot() {
        let data = b"chunked trace payload bytes";
        let mut c = Crc32::new();
        for piece in data.chunks(5) {
            c.update(piece);
        }
        assert_eq!(c.finish(), crc32(data));
    }

    #[test]
    fn single_bit_corruption_changes_the_checksum() {
        let mut data = b"eviction granularity".to_vec();
        let clean = crc32(&data);
        data[7] ^= 0x10;
        assert_ne!(crc32(&data), clean);
    }
}
