//! A minimal JSON value model, emitter and parser.
//!
//! Covers exactly what the workspace persists (trace logs, report
//! payloads): objects, arrays, strings, integers, floats, booleans and
//! null. Object key order is preserved on emit, so output is
//! deterministic. Integers are kept as `i64` (never routed through
//! `f64`), so superblock ids and program counters round-trip losslessly.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (emitted without a decimal point).
    Int(i64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

/// A parse failure, with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset of the failure.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "json parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Builds an object from key/value pairs.
    #[must_use]
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Field lookup on an object.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `u64`, if it is a non-negative integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::Int(i) => u64::try_from(i).ok(),
            _ => None,
        }
    }

    /// The value as `i64`, if it is an integer.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Json::Int(i) => Some(i),
            _ => None,
        }
    }

    /// The value as `f64` (integers widen).
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::Int(i) => Some(i as f64),
            Json::Float(f) => Some(f),
            _ => None,
        }
    }

    /// The value as a string slice.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// True if the value is `null`.
    #[must_use]
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Serializes to a compact JSON string.
    #[must_use]
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                out.push_str(&i.to_string());
            }
            Json::Float(f) => {
                if f.is_finite() {
                    let s = format!("{f}");
                    out.push_str(&s);
                    // Keep floats re-parsable as floats.
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] describing the first malformed byte.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing data after document"));
        }
        Ok(v)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Int(i64::try_from(v).expect("value exceeds i64 range"))
    }
}

impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::Int(i64::from(v))
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Int(i64::try_from(v).expect("value exceeds i64 range"))
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(v)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Float(v)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl<K: Into<String>, V: Into<Json>> FromIterator<(K, V)> for Json {
    fn from_iter<T: IntoIterator<Item = (K, V)>>(iter: T) -> Json {
        Json::Obj(
            iter.into_iter()
                .map(|(k, v)| (k.into(), v.into()))
                .collect(),
        )
    }
}

impl From<BTreeMap<String, Json>> for Json {
    fn from(map: BTreeMap<String, Json>) -> Json {
        Json::Obj(map.into_iter().collect())
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: a run of plain bytes.
            while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\') {
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid utf-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{0008}'),
                        Some(b'f') => s.push('\u{000c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogates are not produced by our emitter;
                            // map them to the replacement character.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are ascii");
        if is_float {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|_| self.err("malformed number"))
        } else {
            text.parse::<i64>()
                .map(Json::Int)
                .map_err(|_| self.err("integer out of range"))
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for v in [
            Json::Null,
            Json::Bool(true),
            Json::Bool(false),
            Json::Int(0),
            Json::Int(-42),
            Json::Int(i64::MAX),
            Json::Float(3.25),
            Json::Str("hello \"world\"\n".to_string()),
        ] {
            let text = v.to_string_compact();
            assert_eq!(Json::parse(&text).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn nested_structures_round_trip() {
        let v = Json::obj(vec![
            ("name", Json::from("mcf")),
            (
                "events",
                Json::Arr(vec![
                    Json::obj(vec![("id", Json::Int(3)), ("from", Json::Null)]),
                    Json::obj(vec![("id", Json::Int(4)), ("from", Json::Int(3))]),
                ]),
            ),
            ("scale", Json::Float(0.5)),
        ]);
        let text = v.to_string_compact();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, v);
        assert_eq!(back.get("name").unwrap().as_str(), Some("mcf"));
        assert_eq!(back.get("events").unwrap().as_arr().unwrap().len(), 2);
    }

    #[test]
    fn integers_do_not_lose_precision() {
        // 2^60 + 1 is not representable in f64.
        let big = (1i64 << 60) + 1;
        let text = Json::Int(big).to_string_compact();
        assert_eq!(Json::parse(&text).unwrap().as_i64(), Some(big));
    }

    #[test]
    fn whitespace_is_tolerated() {
        let text = " { \"a\" : [ 1 , 2 ] , \"b\" : null } ";
        let v = Json::parse(text).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 2);
        assert!(v.get("b").unwrap().is_null());
    }

    #[test]
    fn errors_carry_offsets() {
        let e = Json::parse("{\"a\": }").unwrap_err();
        assert!(e.offset > 0);
        assert!(e.to_string().contains("byte"));
        assert!(Json::parse("[1, 2").is_err());
        assert!(Json::parse("[1] trailing").is_err());
        assert!(Json::parse("").is_err());
    }

    #[test]
    fn float_emission_reparses_as_float() {
        let text = Json::Float(2.0).to_string_compact();
        assert_eq!(text, "2.0");
        assert_eq!(Json::parse(&text).unwrap(), Json::Float(2.0));
    }

    #[test]
    fn object_key_order_is_preserved() {
        let v = Json::obj(vec![("z", Json::Int(1)), ("a", Json::Int(2))]);
        assert_eq!(v.to_string_compact(), "{\"z\":1,\"a\":2}");
    }
}
