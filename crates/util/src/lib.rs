//! # cce-util — dependency-free workspace utilities
//!
//! The build environment has no network access to crates.io, so the
//! workspace carries its own minimal replacements for the two external
//! services everything else leaned on:
//!
//! * [`rng`] — a deterministic, seedable PRNG (xoshiro256++) with a
//!   `gen_range`/`gen_bool` surface mirroring the subset of `rand` the
//!   workload generators use;
//! * [`json`] — a small JSON value model with an emitter and a
//!   recursive-descent parser, enough to persist trace logs and reports;
//! * [`varint`] — LEB128 variable-length integers, the wire encoding of
//!   the binary trace format (DESIGN.md §11);
//! * [`crc`] — CRC-32 (ISO-HDLC, zlib-compatible), the per-chunk
//!   integrity check of the binary trace format.
//!
//! All modules use only `std` and are deterministic across platforms —
//! a requirement for the reproducibility contract in DESIGN.md.

#![deny(unsafe_code)]

pub mod crc;
pub mod json;
pub mod rng;
pub mod varint;

pub use crc::{crc32, Crc32};
pub use json::Json;
pub use rng::{Rng, StdRng};
