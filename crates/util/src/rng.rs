//! Deterministic pseudo-random numbers without external crates.
//!
//! [`StdRng`] is xoshiro256++ (Blackman & Vigna), seeded through
//! SplitMix64 so that every `u64` seed yields a well-mixed state. The
//! [`Rng`] trait mirrors the fraction of `rand`'s API the workspace uses
//! (`gen_range` over integer/float ranges, `gen_bool`), keeping the
//! workload-generator call sites unchanged apart from the import path.
//!
//! The generator is fixed for the lifetime of the repository: traces are
//! identified by `(model, scale, seed)` and experiments compare runs
//! across commits, so the stream for a given seed must never change.

use std::ops::{Range, RangeInclusive};

/// A source of pseudo-random numbers.
///
/// All provided methods derive from [`Rng::next_u64`], so implementors
/// only supply the core generator.
pub trait Rng {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        // Take the high 53 bits: the standard conversion, bias-free.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// True with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `0.0..=1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        self.next_f64() < p
    }

    /// A uniform sample from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample(self)
    }
}

/// A range that knows how to draw a uniform sample from itself.
pub trait SampleRange {
    /// The sampled value type.
    type Output;

    /// Draws one uniform sample.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Samples a uniform integer in `[0, span)` by widening to 128 bits —
/// the multiply-shift reduction, deterministic and unbiased enough for
/// synthetic workload generation.
fn reduce(x: u64, span: u128) -> u128 {
    (u128::from(x) * span) >> 64
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + reduce(rng.next_u64(), span) as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                (lo as i128 + reduce(rng.next_u64(), span) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        let x = self.start + rng.next_f64() * (self.end - self.start);
        // Floating rounding may land exactly on `end`; fold it back.
        if x >= self.end {
            self.start
        } else {
            x
        }
    }
}

impl SampleRange for Range<f32> {
    type Output = f32;
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f32 {
        let r = f64::from(self.start)..f64::from(self.end);
        r.sample(rng) as f32
    }
}

/// xoshiro256++ — fast, 256 bits of state, passes BigCrush.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    /// Creates a generator whose stream is fully determined by `seed`.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> StdRng {
        // SplitMix64 expansion, per the xoshiro authors' recommendation.
        let mut x = seed;
        let mut next = move || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        StdRng {
            s: [next(), next(), next(), next()],
        }
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = r.gen_range(3..17u32);
            assert!((3..17).contains(&x));
            let y = r.gen_range(-50..=50i32);
            assert!((-50..=50).contains(&y));
            let z = r.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&z));
            let w = r.gen_range(0..1usize);
            assert_eq!(w, 0);
        }
    }

    #[test]
    fn gen_range_covers_small_domains() {
        let mut r = StdRng::seed_from_u64(9);
        let mut seen = [false; 6];
        for _ in 0..1_000 {
            seen[r.gen_range(0..6usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all faces of a d6 appear");
    }

    #[test]
    fn next_f64_is_unit_interval_and_roughly_uniform() {
        let mut r = StdRng::seed_from_u64(11);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| r.next_f64()).sum::<f64>() / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} far from 0.5");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(13);
        let hits = (0..20_000).filter(|_| r.gen_bool(0.3)).count();
        let frac = hits as f64 / 20_000.0;
        assert!((frac - 0.3).abs() < 0.02, "observed {frac}");
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn inclusive_range_hits_both_endpoints() {
        let mut r = StdRng::seed_from_u64(17);
        let draws: Vec<u8> = (0..500).map(|_| r.gen_range(0..=3u8)).collect();
        assert!(draws.contains(&0));
        assert!(draws.contains(&3));
    }

    #[test]
    fn works_through_unsized_references() {
        // The workload generators take `R: Rng + ?Sized`.
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> u64 {
            rng.gen_range(0..100u64)
        }
        let mut r = StdRng::seed_from_u64(23);
        let dynref: &mut StdRng = &mut r;
        assert!(draw(dynref) < 100);
    }
}
