//! LEB128 variable-length integers — the wire encoding of the binary
//! trace format (DESIGN.md §11).
//!
//! Small values (superblock ids, sizes, counts) dominate trace files, so
//! 7-bit groups with a continuation bit beat fixed-width fields by 4–7×
//! on real logs. The encoding is the canonical unsigned LEB128: little-
//! endian 7-bit groups, high bit set on every byte but the last. A `u64`
//! therefore occupies at most [`MAX_LEN`] bytes.

/// Longest encoding of a `u64` (⌈64 / 7⌉ bytes).
pub const MAX_LEN: usize = 10;

/// Appends the LEB128 encoding of `value` to `buf`.
pub fn write_u64(buf: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Decodes a LEB128 `u64` from `bytes` starting at `*pos`, advancing
/// `*pos` past it. Returns `None` on a truncated encoding, on more than
/// [`MAX_LEN`] bytes, or on bits beyond the 64th.
#[must_use]
pub fn read_u64(bytes: &[u8], pos: &mut usize) -> Option<u64> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *bytes.get(*pos)?;
        *pos += 1;
        let group = u64::from(byte & 0x7f);
        // The 10th byte may only carry the single remaining bit.
        if shift == 63 && group > 1 {
            return None;
        }
        value |= group << shift;
        if byte & 0x80 == 0 {
            return Some(value);
        }
        shift += 7;
        if shift > 63 {
            return None;
        }
    }
}

/// [`read_u64`] narrowed to `u32`; `None` if the value does not fit.
#[must_use]
pub fn read_u32(bytes: &[u8], pos: &mut usize) -> Option<u32> {
    u32::try_from(read_u64(bytes, pos)?).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: u64) -> (u64, usize) {
        let mut buf = Vec::new();
        write_u64(&mut buf, v);
        let mut pos = 0;
        let back = read_u64(&buf, &mut pos).unwrap();
        assert_eq!(pos, buf.len(), "decode must consume exactly the encoding");
        (back, buf.len())
    }

    #[test]
    fn canonical_values_roundtrip() {
        for v in [
            0,
            1,
            127,
            128,
            300,
            16_383,
            16_384,
            u64::from(u32::MAX),
            u64::MAX - 1,
            u64::MAX,
        ] {
            assert_eq!(roundtrip(v).0, v);
        }
    }

    #[test]
    fn encoded_lengths_match_leb128() {
        assert_eq!(roundtrip(0).1, 1);
        assert_eq!(roundtrip(127).1, 1);
        assert_eq!(roundtrip(128).1, 2);
        assert_eq!(roundtrip(16_383).1, 2);
        assert_eq!(roundtrip(16_384).1, 3);
        assert_eq!(roundtrip(u64::MAX).1, MAX_LEN);
    }

    #[test]
    fn truncated_input_is_rejected() {
        let mut buf = Vec::new();
        write_u64(&mut buf, 300);
        let mut pos = 0;
        assert!(read_u64(&buf[..1], &mut pos).is_none());
        assert!(read_u64(&[], &mut 0).is_none());
    }

    #[test]
    fn overlong_and_overflowing_encodings_are_rejected() {
        // Eleven continuation bytes: longer than any valid u64.
        let overlong = [0x80u8; 11];
        assert!(read_u64(&overlong, &mut 0).is_none());
        // Ten bytes whose last group carries bits past the 64th.
        let mut overflow = vec![0xffu8; 9];
        overflow.push(0x02);
        assert!(read_u64(&overflow, &mut 0).is_none());
    }

    #[test]
    fn sequential_decode_advances_the_cursor() {
        let mut buf = Vec::new();
        for v in [5u64, 500, 50_000] {
            write_u64(&mut buf, v);
        }
        let mut pos = 0;
        assert_eq!(read_u64(&buf, &mut pos), Some(5));
        assert_eq!(read_u64(&buf, &mut pos), Some(500));
        assert_eq!(read_u32(&buf, &mut pos), Some(50_000));
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn read_u32_rejects_wide_values() {
        let mut buf = Vec::new();
        write_u64(&mut buf, u64::from(u32::MAX) + 1);
        assert!(read_u32(&buf, &mut 0).is_none());
    }
}
