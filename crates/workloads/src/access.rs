//! Phased loop-nest access-trace generation.
//!
//! The generator reproduces the control-flow texture a DBT sees from real
//! programs, which is what differentiates eviction policies:
//!
//! * **Phases** — the superblock id space is divided into per-phase
//!   working sets (with overlap); execution visits phases in order and
//!   first-touches blocks in formation order, exactly like a program
//!   moving through initialization → kernel(s) → teardown.
//! * **Loop windows** — within a phase, execution repeatedly iterates
//!   windows of recently touched superblocks (geometric lengths and
//!   iteration counts): strong temporal locality at several scales.
//! * **Sweeps** — occasionally the whole touched region of the phase is
//!   walked once, creating working sets larger than pressured caches
//!   (this is what separates FLUSH / medium / fine FIFO miss rates).
//! * **Direct transitions** — consecutive accesses are marked as
//!   chainable (`direct_from`) with a per-benchmark probability; loop
//!   structure then yields the ~1.7 mean outbound links of Figure 12,
//!   including self-links from single-block windows.

use crate::distributions::{geometric, superblock_size};
use crate::model::BenchmarkModel;
use cce_core::SuperblockId;
use cce_dbt::{SuperblockInfo, TraceLog};
use cce_tinyvm::program::Pc;
use cce_util::{Rng, StdRng};

/// Texture parameters for the access generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccessParams {
    /// Mean loop-window length in superblocks.
    pub loop_mean_len: f64,
    /// Mean iterations per loop window.
    pub loop_mean_iters: f64,
    /// Mean new superblocks first-touched between loop windows.
    pub frontier_mean_step: f64,
    /// Probability that a transition is direct (chainable).
    pub direct_prob: f64,
    /// Probability that a loop window is a sweep over the recently
    /// touched code (an outer loop whose body spans many regions).
    pub sweep_prob: f64,
    /// Fraction of each phase's working set shared with the previous
    /// phase (warm handoff at phase boundaries).
    pub phase_overlap: f64,
    /// Probability of a long-distance recurrence: iterating a region
    /// picked uniformly from *everything* touched so far (shared library
    /// code, the program's persistent kernel). This is what keeps the
    /// live working set larger than a pressured cache.
    pub recur_prob: f64,
    /// Mean number of trailing regions covered by a sweep (the actual
    /// span is geometric, so sweep working sets vary widely and no single
    /// size sits on a cache-capacity knife edge).
    pub sweep_mean_regions: f64,
    /// Probability that a loop window detours through a shared helper
    /// (runtime/library superblock) before iterating. Helper calls create
    /// the long-distance links that make Figure 13's inter-unit fractions
    /// nontrivial.
    pub helper_prob: f64,
}

impl Default for AccessParams {
    fn default() -> AccessParams {
        AccessParams {
            loop_mean_len: 10.0,
            loop_mean_iters: 10.0,
            frontier_mean_step: 3.0,
            direct_prob: 0.85,
            sweep_prob: 0.05,
            phase_overlap: 0.2,
            recur_prob: 0.35,
            sweep_mean_regions: 64.0,
            helper_prob: 0.35,
        }
    }
}

impl AccessParams {
    fn validate(&self) {
        assert!(self.loop_mean_len >= 1.0);
        assert!(self.loop_mean_iters >= 1.0);
        assert!(self.frontier_mean_step >= 1.0);
        assert!((0.0..=1.0).contains(&self.direct_prob));
        assert!((0.0..=1.0).contains(&self.sweep_prob));
        assert!((0.0..=1.0).contains(&self.phase_overlap));
        assert!((0.0..=1.0).contains(&self.recur_prob));
        assert!(self.sweep_mean_regions >= 1.0);
        assert!((0.0..=1.0).contains(&self.helper_prob));
    }
}

/// Chainable exits per superblock: a superblock's translated code has a
/// fixed, small number of exit stubs, so it can be *directly* linked to at
/// most this many distinct successors — everything else goes through the
/// dispatcher. This structural cap is what pins the mean out-degree near
/// Figure 12's 1.7 even though the trace visits successors promiscuously.
const EXITS_PER_SUPERBLOCK: usize = 2;

struct Emitter<'a> {
    log: &'a mut TraceLog,
    prev: Option<SuperblockId>,
    direct_prob: f64,
    /// Fixed successor slots per block (the CFG's chainable exits).
    exits: std::collections::HashMap<u64, Vec<u64>>,
}

impl Emitter<'_> {
    fn emit<R: Rng>(&mut self, rng: &mut R, idx: usize) {
        let id = SuperblockId(idx as u64);
        let direct_from = match self.prev {
            Some(p) if rng.gen_bool(self.direct_prob) => {
                let slots = self.exits.entry(p.0).or_default();
                if slots.contains(&id.0) {
                    Some(p)
                } else if slots.len() < EXITS_PER_SUPERBLOCK {
                    slots.push(id.0);
                    Some(p)
                } else {
                    // All exit stubs of `p` already target other blocks:
                    // this transition is an indirect branch / dispatcher
                    // round-trip.
                    None
                }
            }
            _ => None,
        };
        self.log.record_access(id, direct_from);
        self.prev = Some(id);
    }
}

/// A loop region with fixed boundaries and fixed helper call sites.
#[derive(Debug, Clone)]
struct Region {
    s: usize,
    e: usize,
    /// `calls[i - s] = Some(h)`: block `i` calls shared helper number `h`
    /// (resolved modulo the helpers available at call time).
    calls: Vec<Option<usize>>,
}

/// Emits one pass over `region`, taking its fixed helper-call detours.
/// Returns `false` when the access budget is exhausted.
fn run_region<R: Rng>(
    emitter: &mut Emitter<'_>,
    rng: &mut R,
    region: &Region,
    helper_starts: &[usize],
    budget: &mut u64,
) -> bool {
    for i in region.s..region.e {
        if *budget == 0 {
            return false;
        }
        emitter.emit(rng, i);
        *budget -= 1;
        if let Some(h) = region.calls[i - region.s] {
            if !helper_starts.is_empty() {
                if *budget == 0 {
                    return false;
                }
                // Call the shared helper and come straight back: the next
                // loop emission forms the return transition.
                emitter.emit(rng, helper_starts[h % helper_starts.len()]);
                *budget -= 1;
            }
        }
    }
    true
}

/// Generates the trace for `model` at `scale` with the given seed.
///
/// See [`BenchmarkModel::trace`] for the public entry point.
///
/// # Panics
///
/// Panics if the model's parameters are out of range.
#[must_use]
pub fn generate_trace(model: &BenchmarkModel, scale: f64, seed: u64) -> TraceLog {
    model.pattern.validate();
    assert!(model.phases >= 1, "at least one phase");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15);
    let n = model.scaled_superblocks(scale);
    let total_accesses = model.scaled_accesses(scale);

    let mut log = TraceLog::new(&model.name);
    // Superblock registry: sizes drawn once; ids in formation order.
    for i in 0..n {
        let size = superblock_size(&mut rng, model.median_size, model.size_sigma);
        log.record_superblock(SuperblockInfo {
            id: SuperblockId(i as u64),
            head_pc: Pc(0x0040_0000 + (i as u64) * 512),
            size,
            guest_blocks: 1 + (size / 64),
            exits: 2,
        });
    }

    let p = &model.pattern;
    let phases = model.phases.min(n); // degenerate safety
    let base_span = n / phases;
    let overlap = ((base_span as f64) * p.phase_overlap) as usize;

    let mut emitter = Emitter {
        log: &mut log,
        prev: None,
        direct_prob: p.direct_prob,
        exits: std::collections::HashMap::new(),
    };

    // Loop regions have FIXED boundaries, like real loop bodies: a
    // block's successors are its interior next block, its region's
    // loop-back edge, and the occasional inter-region jump — which is
    // what keeps the mean out-degree near Figure 12's 1.7. The pool is
    // GLOBAL: code from earlier phases keeps receiving traffic (shared
    // helpers, the program's persistent kernel), so the live working set
    // stays comparable to the full footprint and pressured caches are
    // genuinely stressed.
    let mut regions: Vec<Region> = Vec::new();
    // Entry superblocks of the program's shared helpers (the first few
    // regions — runtime and library code formed earliest).
    let mut helper_starts: Vec<usize> = Vec::new();
    let mut frontier = 0usize;
    let mut region_start = 0usize;
    let mut region_len_target = geometric(&mut rng, p.loop_mean_len) as usize;

    for phase in 0..phases {
        let hi = if phase == phases - 1 {
            n
        } else {
            (phase + 1) * base_span
        };
        // Last phase absorbs the integer-division remainder.
        let per_phase_accesses = if phase == phases - 1 {
            total_accesses / phases as u64 + total_accesses % phases as u64
        } else {
            total_accesses / phases as u64
        };
        // Phase starts with a dispatcher round-trip, not a chainable jump.
        emitter.prev = None;

        let mut budget = per_phase_accesses;
        macro_rules! close_region {
            () => {
                if region_start < frontier {
                    let calls = (region_start..frontier)
                        .map(|_| {
                            if rng.gen_bool(p.helper_prob) {
                                Some(rng.gen_range(0..64usize))
                            } else {
                                None
                            }
                        })
                        .collect();
                    regions.push(Region {
                        s: region_start,
                        e: frontier,
                        calls,
                    });
                    if helper_starts.len() < 8 {
                        helper_starts.push(region_start);
                    }
                    region_start = frontier;
                    region_len_target = geometric(&mut rng, p.loop_mean_len) as usize;
                }
            };
        }
        macro_rules! advance_frontier {
            ($count:expr) => {
                for _ in 0..$count {
                    if frontier >= hi || budget == 0 {
                        break;
                    }
                    emitter.emit(&mut rng, frontier);
                    frontier += 1;
                    budget -= 1;
                    if frontier - region_start >= region_len_target.max(1) {
                        close_region!();
                    }
                }
            };
        }

        // Warm handoff: re-iterate the tail of the previous phase's
        // working set once (the `phase_overlap` fraction of a span).
        if phase > 0 && overlap > 0 {
            let mut handoff_budget = budget.min(overlap as u64);
            let start_budget = handoff_budget;
            for r in regions.iter().rev() {
                if handoff_budget == 0 {
                    break;
                }
                run_region(
                    &mut emitter,
                    &mut rng,
                    r,
                    &helper_starts,
                    &mut handoff_budget,
                );
            }
            budget -= start_budget - handoff_budget;
        }

        advance_frontier!(1);
        while budget > 0 {
            // First-touch a few new blocks.
            let step = geometric(&mut rng, p.frontier_mean_step);
            advance_frontier!(step);
            if regions.is_empty() {
                // Degenerate tiny phase: close the partial region.
                if region_start < frontier {
                    close_region!();
                } else {
                    advance_frontier!(1);
                    continue;
                }
                if regions.is_empty() {
                    continue;
                }
            }
            if rng.gen_bool(p.sweep_prob) {
                // Outer-loop sweep over a geometrically-sized trailing
                // window of regions.
                let span = geometric(&mut rng, p.sweep_mean_regions) as usize;
                let from = regions.len().saturating_sub(span);
                for r in &regions[from..] {
                    if !run_region(&mut emitter, &mut rng, r, &helper_starts, &mut budget) {
                        break;
                    }
                }
            } else {
                // Iterate one region: usually recency-biased, sometimes a
                // long-distance recurrence anywhere in the program.
                let idx = if rng.gen_bool(p.recur_prob) {
                    rng.gen_range(0..regions.len())
                } else {
                    let back = (geometric(&mut rng, 2.0) as usize - 1).min(regions.len() - 1);
                    regions.len() - 1 - back
                };
                let iters = geometric(&mut rng, p.loop_mean_iters);
                let region = &regions[idx];
                for _ in 0..iters {
                    if !run_region(&mut emitter, &mut rng, region, &helper_starts, &mut budget) {
                        break;
                    }
                }
            }
        }
        // Guarantee full phase coverage even if the access budget ran out
        // before the frontier reached the phase end.
        while frontier < hi {
            emitter.emit(&mut rng, frontier);
            frontier += 1;
            if frontier - region_start >= region_len_target.max(1) {
                close_region!();
            }
        }
        close_region!();
    }
    log
}

#[cfg(test)]
mod tests {
    use crate::catalog;

    #[test]
    fn trace_is_deterministic() {
        let m = catalog::by_name("gzip").unwrap();
        let a = m.trace(0.2, 7);
        let b = m.trace(0.2, 7);
        assert_eq!(a, b);
        let c = m.trace(0.2, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn trace_matches_table1_counts_at_full_scale() {
        let m = catalog::by_name("mcf").unwrap();
        let t = m.trace(1.0, 1);
        assert_eq!(t.superblocks.len(), 158);
    }

    #[test]
    fn every_superblock_is_accessed() {
        let m = catalog::by_name("gzip").unwrap();
        let t = m.trace(0.3, 3);
        let n = t.superblocks.len();
        let mut touched = vec![false; n];
        for ev in &t.events {
            let cce_dbt::TraceEvent::Access { id, .. } = ev;
            touched[id.0 as usize] = true;
        }
        let untouched = touched.iter().filter(|&&t| !t).count();
        assert_eq!(
            untouched, 0,
            "{untouched} of {n} superblocks never accessed"
        );
    }

    #[test]
    fn median_size_is_calibrated() {
        let m = catalog::by_name("gzip").unwrap();
        let t = m.trace(1.0, 5);
        let s = t.summary();
        let err = (f64::from(s.median_size) - f64::from(m.median_size)).abs();
        assert!(
            err < f64::from(m.median_size) * 0.15,
            "median {} vs target {}",
            s.median_size,
            m.median_size
        );
    }

    #[test]
    fn out_degree_is_near_paper_value() {
        // Figure 12: average 1.7 outbound links per superblock across the
        // suite. Accept a generous band per benchmark.
        let mut total = 0.0;
        let mut count = 0;
        for m in catalog::spec() {
            let t = m.trace(0.3, 11);
            let s = t.summary();
            total += s.mean_out_degree;
            count += 1;
            assert!(
                s.mean_out_degree > 0.8 && s.mean_out_degree < 3.5,
                "{}: out-degree {}",
                m.name,
                s.mean_out_degree
            );
        }
        let avg = total / f64::from(count);
        assert!((1.1..=2.5).contains(&avg), "suite average {avg}");
    }

    #[test]
    fn direct_fraction_bounded_by_parameter() {
        // `direct_prob` is the chance a transition *attempts* chaining;
        // the exit-stub cap rejects attempts whose source already has
        // EXITS_PER_SUPERBLOCK distinct successors, so the realized
        // fraction sits below the parameter but not drastically so.
        let m = catalog::by_name("vpr").unwrap();
        let t = m.trace(0.3, 13);
        let s = t.summary();
        assert!(
            s.direct_fraction <= m.pattern.direct_prob + 1e-9,
            "direct fraction {} exceeds {}",
            s.direct_fraction,
            m.pattern.direct_prob
        );
        assert!(
            s.direct_fraction > m.pattern.direct_prob - 0.3,
            "direct fraction {} collapsed",
            s.direct_fraction
        );
    }

    #[test]
    fn accesses_scale_with_reuse_factor() {
        let m = catalog::by_name("gzip").unwrap();
        let t = m.trace(0.5, 2);
        let s = t.summary();
        let expect = m.scaled_accesses(0.5);
        // Generator may overshoot a phase boundary by one window.
        assert!(s.accesses >= expect, "{} < {expect}", s.accesses);
        assert!(s.accesses < expect + expect / 4);
    }
}
