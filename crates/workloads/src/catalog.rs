//! The 20 benchmarks of Table 1, calibrated to the paper's data.
//!
//! Paper-sourced fields: superblock counts (Table 1), median sizes
//! (Figure 4; Windows medians approximated from the figure's scale),
//! Table 2 runtimes. Calibrated fields (`reuse_factor`, `phases`,
//! `instrs_per_entry`, `cpi`, pattern texture) are documented in
//! DESIGN.md §2: they control trace length, working-set churn and the
//! dispatch-density of each workload, and were chosen to land the
//! aggregate trace statistics in the paper's reported ranges.

use crate::access::AccessParams;
use crate::model::{BenchmarkModel, Suite};

#[allow(clippy::too_many_arguments)]
fn spec_model(
    name: &str,
    description: &str,
    superblocks: usize,
    median_size: u32,
    reuse_factor: f64,
    phases: usize,
    base_seconds: f64,
    paper_disabled_seconds: f64,
    instrs_per_entry: f64,
    cpi: f64,
) -> BenchmarkModel {
    BenchmarkModel {
        name: name.to_owned(),
        description: description.to_owned(),
        suite: Suite::SpecInt2000,
        superblocks,
        median_size,
        size_sigma: 0.55,
        reuse_factor,
        phases,
        pattern: AccessParams::default(),
        base_seconds,
        paper_disabled_seconds,
        instrs_per_entry,
        cpi,
    }
}

#[allow(clippy::too_many_arguments)]
fn windows_model(
    name: &str,
    description: &str,
    superblocks: usize,
    median_size: u32,
    reuse_factor: f64,
    phases: usize,
    instrs_per_entry: f64,
    cpi: f64,
) -> BenchmarkModel {
    BenchmarkModel {
        name: name.to_owned(),
        description: description.to_owned(),
        suite: Suite::Windows,
        superblocks,
        median_size,
        size_sigma: 0.65,
        reuse_factor,
        phases,
        pattern: AccessParams {
            loop_mean_iters: 6.0,
            sweep_prob: 0.06,
            direct_prob: 0.8,
            phase_overlap: 0.15,
            ..AccessParams::default()
        },
        base_seconds: 0.0,
        paper_disabled_seconds: 0.0,
        instrs_per_entry,
        cpi,
    }
}

/// The 12 SPECint2000 benchmarks (Table 1, top half).
#[must_use]
pub fn spec() -> Vec<BenchmarkModel> {
    vec![
        spec_model(
            "gzip",
            "Compression",
            301,
            244,
            400.0,
            3,
            230.0,
            7951.0,
            180.0,
            0.8,
        ),
        spec_model(
            "vpr",
            "FPGA Place+Route",
            449,
            242,
            400.0,
            4,
            333.0,
            2474.0,
            900.0,
            1.1,
        ),
        spec_model(
            "gcc",
            "C Compiler",
            8751,
            190,
            120.0,
            6,
            206.0,
            3284.0,
            400.0,
            1.0,
        ),
        spec_model(
            "mcf",
            "Combinatorial Optimization",
            158,
            237,
            600.0,
            3,
            368.0,
            2014.0,
            1300.0,
            2.5,
        ),
        spec_model(
            "crafty",
            "Chess Game",
            1488,
            233,
            250.0,
            4,
            215.0,
            3547.0,
            380.0,
            0.9,
        ),
        spec_model(
            "parser",
            "Word Processing",
            2418,
            223,
            200.0,
            4,
            350.0,
            6795.0,
            320.0,
            1.1,
        ),
        spec_model(
            "eon",
            "Computer Visualization",
            448,
            230,
            400.0,
            3,
            0.0,
            0.0,
            500.0,
            1.0,
        ),
        spec_model(
            "perlbmk",
            "PERL Language",
            2144,
            225,
            220.0,
            5,
            336.0,
            6945.0,
            300.0,
            1.0,
        ),
        spec_model(
            "gap",
            "Group Theory Interpreter",
            667,
            224,
            350.0,
            4,
            195.0,
            4231.0,
            290.0,
            1.0,
        ),
        spec_model(
            "vortex",
            "Object-Oriented Database",
            1985,
            220,
            220.0,
            5,
            382.0,
            4655.0,
            530.0,
            1.2,
        ),
        spec_model(
            "bzip2",
            "Compression",
            224,
            213,
            500.0,
            3,
            287.0,
            4294.0,
            430.0,
            1.0,
        ),
        spec_model(
            "twolf",
            "Place+Route",
            574,
            218,
            400.0,
            4,
            658.0,
            6490.0,
            680.0,
            1.3,
        ),
    ]
}

/// The 8 interactive Windows applications (Table 1, bottom half).
#[must_use]
pub fn windows() -> Vec<BenchmarkModel> {
    vec![
        windows_model("iexplore", "Web Browser", 14846, 262, 80.0, 10, 450.0, 1.4),
        windows_model("outlook", "E-Mail App", 13233, 255, 80.0, 10, 420.0, 1.4),
        windows_model("photoshop", "Photo Editor", 9434, 280, 100.0, 8, 520.0, 1.3),
        windows_model("pinball", "3D Game Demo", 1086, 300, 200.0, 4, 350.0, 1.2),
        windows_model(
            "powerpoint",
            "Presentation",
            14475,
            270,
            80.0,
            10,
            430.0,
            1.4,
        ),
        windows_model(
            "visualstudio",
            "Development Env",
            7063,
            248,
            100.0,
            8,
            400.0,
            1.3,
        ),
        windows_model("winzip", "Compression", 3198, 240, 150.0, 5, 380.0, 1.1),
        windows_model("word", "Word Processor", 18043, 258, 80.0, 12, 440.0, 1.5),
    ]
}

/// All 20 benchmarks in the paper's Table 1 order.
#[must_use]
pub fn all() -> Vec<BenchmarkModel> {
    let mut v = spec();
    v.extend(windows());
    v
}

/// Looks up a benchmark by its Table 1 name.
#[must_use]
pub fn by_name(name: &str) -> Option<BenchmarkModel> {
    all().into_iter().find(|m| m.name == name)
}

/// The 11 SPEC benchmarks of Table 2 (eon was excluded by the paper).
#[must_use]
pub fn table2() -> Vec<BenchmarkModel> {
    spec()
        .into_iter()
        .filter(|m| m.base_seconds > 0.0)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_benchmarks_in_paper_order() {
        let a = all();
        assert_eq!(a.len(), 20);
        assert_eq!(a[0].name, "gzip");
        assert_eq!(a[19].name, "word");
        assert_eq!(spec().len(), 12);
        assert_eq!(windows().len(), 8);
    }

    #[test]
    fn superblock_counts_match_table1() {
        let expect = [
            ("gzip", 301),
            ("vpr", 449),
            ("gcc", 8751),
            ("mcf", 158),
            ("crafty", 1488),
            ("parser", 2418),
            ("eon", 448),
            ("perlbmk", 2144),
            ("gap", 667),
            ("vortex", 1985),
            ("bzip2", 224),
            ("twolf", 574),
            ("iexplore", 14846),
            ("outlook", 13233),
            ("photoshop", 9434),
            ("pinball", 1086),
            ("powerpoint", 14475),
            ("visualstudio", 7063),
            ("winzip", 3198),
            ("word", 18043),
        ];
        for (name, count) in expect {
            assert_eq!(by_name(name).unwrap().superblocks, count, "{name}");
        }
    }

    #[test]
    fn table2_excludes_eon() {
        let t2 = table2();
        assert_eq!(t2.len(), 11);
        assert!(t2.iter().all(|m| m.name != "eon"));
        assert!(t2.iter().all(|m| m.paper_disabled_seconds > m.base_seconds));
    }

    #[test]
    fn smallest_and_largest_match_section_4_2() {
        // §4.2: maxCache ranges from gzip (smallest, 301 superblocks) to
        // word (largest, 18 043 superblocks).
        let a = all();
        let min = a.iter().min_by_key(|m| m.superblocks).unwrap();
        let max = a.iter().max_by_key(|m| m.superblocks).unwrap();
        assert_eq!(min.name, "mcf"); // by count mcf is smallest…
        assert_eq!(max.name, "word");
        // …but gzip has the smallest *byte* footprint claim in the paper
        // (171 KB); sanity-check the byte ordering is at least plausible:
        // word's footprint dwarfs gzip's.
        let gzip = by_name("gzip").unwrap();
        let word = by_name("word").unwrap();
        let gz_bytes = gzip.superblocks as u64 * u64::from(gzip.median_size);
        let wd_bytes = word.superblocks as u64 * u64::from(word.median_size);
        assert!(wd_bytes > gz_bytes * 30);
    }

    #[test]
    fn unknown_name_is_none() {
        assert!(by_name("notabenchmark").is_none());
    }

    #[test]
    fn full_scale_footprints_are_plausible() {
        // §4.2: gzip ≈ 171 KB, word ≈ 34.2 MB. Median × count is a rough
        // proxy; the generated traces land near these (log-normal mean is
        // above the median).
        let gzip = by_name("gzip").unwrap().trace(1.0, 1);
        let kb = gzip.max_cache_bytes() as f64 / 1024.0;
        assert!((60.0..400.0).contains(&kb), "gzip maxCache {kb} KB");
    }
}
