//! Deterministic samplers for workload generation.
//!
//! Implemented by hand on top of `rand`'s uniform primitives so the
//! workspace needs no extra distribution crates: log-normal via
//! Box–Muller (superblock sizes — code region sizes are classically
//! log-normal, and this matches Figure 3's long right tail), and a
//! geometric sampler (loop lengths and iteration counts).

use cce_util::Rng;

/// Samples a standard normal via the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid ln(0).
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Samples a log-normal with the given *median* and shape `sigma`.
///
/// For a log-normal, `median = exp(mu)`, so parameterizing by median makes
/// it trivial to match Figure 4's per-benchmark medians.
///
/// # Panics
///
/// Panics if `median <= 0` or `sigma < 0`.
pub fn log_normal<R: Rng + ?Sized>(rng: &mut R, median: f64, sigma: f64) -> f64 {
    assert!(median > 0.0, "median must be positive");
    assert!(sigma >= 0.0, "sigma must be nonnegative");
    let mu = median.ln();
    (mu + sigma * standard_normal(rng)).exp()
}

/// Samples a superblock size in bytes: log-normal around `median_size`,
/// clamped to a plausible range (a superblock is at least one translated
/// instruction plus a stub, and DynamoRIO caps trace length).
pub fn superblock_size<R: Rng + ?Sized>(rng: &mut R, median_size: u32, sigma: f64) -> u32 {
    let raw = log_normal(rng, f64::from(median_size), sigma);
    raw.round().clamp(32.0, 2048.0) as u32
}

/// Samples a geometric value ≥ 1 with the given mean (mean must be ≥ 1).
///
/// # Panics
///
/// Panics if `mean < 1`.
pub fn geometric<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> u64 {
    assert!(mean >= 1.0, "geometric mean must be >= 1");
    if mean == 1.0 {
        return 1;
    }
    // P(X = k) = (1-p)^(k-1) p with mean 1/p.
    let p = 1.0 / mean;
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let k = (u.ln() / (1.0 - p).ln()).ceil();
    k.max(1.0) as u64
}

/// Histogram buckets used for Figure 3's size distribution.
pub const SIZE_BUCKETS: [(u32, u32); 6] = [
    (0, 63),
    (64, 127),
    (128, 255),
    (256, 511),
    (512, 1023),
    (1024, u32::MAX),
];

/// Human-readable labels for [`SIZE_BUCKETS`].
pub const SIZE_BUCKET_LABELS: [&str; 6] =
    ["0-63", "64-127", "128-255", "256-511", "512-1023", "1024+"];

/// Buckets sizes per [`SIZE_BUCKETS`], returning counts.
#[must_use]
pub fn size_histogram(sizes: &[u32]) -> [u64; 6] {
    let mut h = [0u64; 6];
    for &s in sizes {
        for (i, &(lo, hi)) in SIZE_BUCKETS.iter().enumerate() {
            if s >= lo && s <= hi {
                h[i] += 1;
                break;
            }
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use cce_util::StdRng;

    #[test]
    fn normal_has_zero_mean_unit_variance() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn log_normal_median_matches_parameter() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut samples: Vec<f64> = (0..10_001)
            .map(|_| log_normal(&mut rng, 230.0, 0.6))
            .collect();
        samples.sort_by(f64::total_cmp);
        let median = samples[samples.len() / 2];
        assert!((median - 230.0).abs() < 25.0, "median {median}");
    }

    #[test]
    fn superblock_sizes_are_clamped() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..5000 {
            let s = superblock_size(&mut rng, 230, 1.5);
            assert!((32..=2048).contains(&s));
        }
    }

    #[test]
    fn geometric_mean_is_close() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 20_000;
        let mean_target = 7.0;
        let sum: u64 = (0..n).map(|_| geometric(&mut rng, mean_target)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - mean_target).abs() < 0.5, "mean {mean}");
    }

    #[test]
    fn geometric_of_mean_one_is_constant() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            assert_eq!(geometric(&mut rng, 1.0), 1);
        }
    }

    #[test]
    fn histogram_covers_all_sizes() {
        let sizes = [10, 64, 130, 256, 600, 5000, 63, 127];
        let h = size_histogram(&sizes);
        assert_eq!(h.iter().sum::<u64>(), sizes.len() as u64);
        assert_eq!(h[0], 2); // 10, 63
        assert_eq!(h[1], 2); // 64, 127
        assert_eq!(h[5], 1); // 5000
    }

    #[test]
    fn samplers_are_deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..50).map(|_| geometric(&mut rng, 5.0)).collect()
        };
        let b: Vec<u64> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..50).map(|_| geometric(&mut rng, 5.0)).collect()
        };
        assert_eq!(a, b);
    }
}
