//! # cce-workloads — benchmark models for the eviction-granularity study
//!
//! The paper evaluates 20 workloads: the 12 SPECint2000 benchmarks under
//! Linux and 8 interactive Windows applications (Table 1). We cannot run
//! those binaries, so this crate models each one as a *statistical
//! workload*: a [`model::BenchmarkModel`] calibrated to the paper's
//! published per-benchmark facts —
//!
//! * hot-superblock count (Table 1's middle column),
//! * median translated superblock size (Figure 4) and the size spread
//!   that produces Figure 3's bucket distribution,
//! * mean outbound chainable links ≈ 1.7 (Figure 12),
//! * Table 2's measured runtimes and per-entry instruction densities
//!   (for the chaining slowdown model),
//!
//! plus a phased loop-nest access generator ([`access`]) that produces the
//! temporal locality and working-set shifts that make eviction policies
//! differ. The output is a [`cce_dbt::TraceLog`] — byte-identical in kind
//! to what the real DBT engine in `cce-dbt` emits from executed TinyVM
//! programs, so the simulator treats modelled and executed workloads
//! interchangeably.
//!
//! # Example
//!
//! ```
//! use cce_workloads::catalog;
//!
//! let gzip = catalog::by_name("gzip").expect("gzip is in Table 1");
//! let trace = gzip.trace(0.25, 42); // quarter-scale, seed 42
//! let summary = trace.summary();
//! assert!(summary.superblock_count > 0);
//! assert!(summary.accesses > summary.superblock_count as u64);
//! ```

#![deny(unsafe_code)]

pub mod access;
pub mod catalog;
pub mod distributions;
pub mod mix;
pub mod model;

pub use catalog::{all, by_name, spec, windows};
pub use model::{BenchmarkModel, Suite};
