//! Multiprogrammed workload mixes.
//!
//! The paper motivates bounded caches by noting that "users tend to
//! execute several programs at once" (§2.3): several translators share
//! the machine, or one system-wide translator serves several processes
//! with one code cache. [`interleave`] builds that workload: it
//! time-slices multiple benchmark traces into a single access stream over
//! a disjoint superblock id space. Chain transitions never survive a
//! context switch (the switch itself goes through the kernel and the
//! dispatcher), so the first access of every slice is non-direct.

use cce_core::SuperblockId;
use cce_dbt::{SuperblockInfo, TraceEvent, TraceLog};

/// Interleaves `traces` round-robin with `slice` accesses per turn.
///
/// Superblock ids are re-based so the apps never collide; each input's
/// registry is carried over in order. Traces that run out simply drop out
/// of the rotation (shorter apps finish first, like real processes).
///
/// # Panics
///
/// Panics if `traces` is empty or `slice == 0`.
#[must_use]
pub fn interleave(traces: &[TraceLog], slice: usize) -> TraceLog {
    assert!(!traces.is_empty(), "need at least one trace to interleave");
    assert!(slice > 0, "slice must be nonzero");

    let name = format!(
        "mix({})",
        traces
            .iter()
            .map(|t| t.name.as_str())
            .collect::<Vec<_>>()
            .join("+")
    );
    let mut mixed = TraceLog::new(&name);

    // Re-base each app's id space.
    let mut bases = Vec::with_capacity(traces.len());
    let mut next_base = 0u64;
    for t in traces {
        bases.push(next_base);
        for sb in &t.superblocks {
            mixed.record_superblock(SuperblockInfo {
                id: SuperblockId(sb.id.0 + next_base),
                ..*sb
            });
        }
        next_base += t.superblocks.len() as u64;
    }

    // Round-robin time slices.
    let mut cursors = vec![0usize; traces.len()];
    loop {
        let mut progressed = false;
        for (app, t) in traces.iter().enumerate() {
            let base = bases[app];
            let start = cursors[app];
            if start >= t.events.len() {
                continue;
            }
            progressed = true;
            let end = (start + slice).min(t.events.len());
            for (i, ev) in t.events[start..end].iter().enumerate() {
                let TraceEvent::Access { id, direct_from } = *ev;
                // The first access after a context switch is dispatched.
                let direct_from = if i == 0 {
                    None
                } else {
                    direct_from.map(|f| SuperblockId(f.0 + base))
                };
                mixed.record_access(SuperblockId(id.0 + base), direct_from);
            }
            cursors[app] = end;
        }
        if !progressed {
            break;
        }
    }
    mixed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    fn small(name: &str) -> TraceLog {
        catalog::by_name(name).unwrap().trace(0.05, 3)
    }

    #[test]
    fn ids_are_rebased_disjointly() {
        let a = small("gzip");
        let b = small("mcf");
        let m = interleave(&[a.clone(), b.clone()], 100);
        assert_eq!(
            m.superblocks.len(),
            a.superblocks.len() + b.superblocks.len()
        );
        let n_a = a.superblocks.len() as u64;
        // Second app's registry starts where the first ends.
        assert_eq!(m.superblocks[a.superblocks.len()].id.0, n_a);
        // Every event references the combined registry.
        let total = m.superblocks.len() as u64;
        for ev in &m.events {
            let TraceEvent::Access { id, .. } = ev;
            assert!(id.0 < total);
        }
    }

    #[test]
    fn every_input_event_appears_exactly_once() {
        let a = small("gzip");
        let b = small("bzip2");
        let m = interleave(&[a.clone(), b.clone()], 64);
        assert_eq!(m.events.len(), a.events.len() + b.events.len());
    }

    #[test]
    fn context_switches_break_chains() {
        let a = small("gzip");
        let b = small("bzip2");
        let slice = 50;
        let m = interleave(&[a, b], slice);
        // Every slice boundary must be a non-direct access.
        let mut idx = 0;
        let mut boundary_count = 0;
        while idx < m.events.len() {
            let TraceEvent::Access { direct_from, .. } = m.events[idx];
            assert!(
                direct_from.is_none(),
                "slice boundary at {idx} carried a chain transition"
            );
            boundary_count += 1;
            idx += slice; // boundaries align until one app drains
            if boundary_count > 4 {
                break; // only the aligned prefix is checked
            }
        }
        assert!(boundary_count > 1);
    }

    #[test]
    fn max_cache_is_the_sum_of_the_parts() {
        let a = small("gzip");
        let b = small("mcf");
        let sum = a.max_cache_bytes() + b.max_cache_bytes();
        let m = interleave(&[a, b], 100);
        assert_eq!(m.max_cache_bytes(), sum);
    }

    #[test]
    fn mix_name_lists_apps() {
        let m = interleave(&[small("gzip"), small("mcf")], 10);
        assert_eq!(m.name, "mix(gzip+mcf)");
    }

    #[test]
    #[should_panic(expected = "at least one trace")]
    fn empty_mix_panics() {
        let _ = interleave(&[], 10);
    }

    #[test]
    fn faster_context_switching_raises_shared_cache_misses() {
        // The multiprogramming pressure of §2.3 in its cleanest form:
        // with a shared cache, the more often processes alternate, the
        // more each return finds its code evicted by the other's bursts.
        // (Sharing with *long* slices can actually beat partitioned
        // caches — statistical multiplexing — so the slice length is the
        // interesting axis, not sharing per se.)
        use cce_core::Granularity;
        use cce_sim::simulator::SimConfig;
        use cce_sim::Replay;

        let a = catalog::by_name("gzip").unwrap().trace(0.2, 9);
        let b = catalog::by_name("crafty").unwrap().trace(0.2, 9);
        let rate = |slice: usize| {
            let mixed = interleave(&[a.clone(), b.clone()], slice);
            Replay::new(&mixed)
                .config(&SimConfig {
                    granularity: Granularity::Flush,
                    capacity: mixed.max_cache_bytes() / 4,
                    ..SimConfig::default()
                })
                .run()
                .unwrap()
                .into_solo()
                .stats
                .miss_rate()
        };
        let fast = rate(25);
        let slow = rate(800);
        assert!(
            fast > slow,
            "fast switching {fast} should miss more than slow {slow}"
        );
    }
}
