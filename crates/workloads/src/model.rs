//! The per-benchmark statistical model.

use crate::access::{self, AccessParams};
use cce_dbt::TraceLog;

/// Which benchmark suite a workload belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// SPECint2000 under Linux.
    SpecInt2000,
    /// Interactive Windows applications.
    Windows,
}

impl std::fmt::Display for Suite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Suite::SpecInt2000 => f.write_str("SPECint2000"),
            Suite::Windows => f.write_str("Windows"),
        }
    }
}

/// A benchmark modelled from the paper's published per-workload facts.
///
/// The fields marked *(paper)* are taken directly from the paper's tables
/// and figures; the remaining fields are calibration parameters chosen so
/// the generated traces reproduce the paper's aggregate trace statistics
/// (see DESIGN.md §2 for the substitution rationale).
#[derive(Debug, Clone, PartialEq)]
pub struct BenchmarkModel {
    /// Benchmark name *(paper, Table 1)*.
    pub name: String,
    /// One-line description *(paper, Table 1)*.
    pub description: String,
    /// Suite membership *(paper, Table 1)*.
    pub suite: Suite,
    /// Hot superblocks formed over the run *(paper, Table 1)*.
    pub superblocks: usize,
    /// Median translated superblock size in bytes *(paper, Figure 4)*.
    pub median_size: u32,
    /// Log-normal shape of the size distribution (calibrated to Figure 3).
    pub size_sigma: f64,
    /// Mean accesses per superblock at full scale (trace length control).
    pub reuse_factor: f64,
    /// Number of program phases (working-set shifts).
    pub phases: usize,
    /// Access-pattern texture.
    pub pattern: AccessParams,
    /// Measured runtime with chaining enabled, seconds *(paper, Table 2;
    /// 0 for benchmarks the paper excluded)*.
    pub base_seconds: f64,
    /// Paper-measured runtime with chaining disabled, seconds *(paper,
    /// Table 2; 0 where excluded)* — kept for comparison in EXPERIMENTS.md.
    pub paper_disabled_seconds: f64,
    /// Mean guest instructions executed per superblock entry (dispatch
    /// density; calibrated — tight-loop codes are small, memory-bound
    /// codes large).
    pub instrs_per_entry: f64,
    /// Application CPI on the paper's Xeon (calibration for §5.3).
    pub cpi: f64,
}

impl BenchmarkModel {
    /// Generates the benchmark's access trace.
    ///
    /// `scale` in `(0, 1]` shrinks both the superblock count and the
    /// access count proportionally — experiments use 1.0, tests and
    /// benches use small fractions. Equal `(scale, seed)` pairs give
    /// identical traces.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not in `(0, 1]`.
    #[must_use]
    pub fn trace(&self, scale: f64, seed: u64) -> TraceLog {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
        access::generate_trace(self, scale, seed)
    }

    /// The number of superblocks at a given scale (at least 8).
    #[must_use]
    pub fn scaled_superblocks(&self, scale: f64) -> usize {
        ((self.superblocks as f64 * scale).round() as usize).max(8)
    }

    /// Total accesses at a given scale (at least 10× the superblocks).
    #[must_use]
    pub fn scaled_accesses(&self, scale: f64) -> u64 {
        let sbs = self.scaled_superblocks(scale) as f64;
        ((sbs * self.reuse_factor) as u64).max(self.scaled_superblocks(scale) as u64 * 10)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    #[test]
    fn scaled_counts_have_floors() {
        let m = catalog::by_name("mcf").unwrap();
        assert_eq!(m.scaled_superblocks(1.0), 158);
        assert!(m.scaled_superblocks(0.001) >= 8);
        assert!(m.scaled_accesses(0.001) >= m.scaled_superblocks(0.001) as u64 * 10);
    }

    #[test]
    #[should_panic(expected = "scale must be in")]
    fn zero_scale_rejected() {
        let m = catalog::by_name("gzip").unwrap();
        let _ = m.trace(0.0, 1);
    }

    #[test]
    fn suites_display() {
        assert_eq!(Suite::SpecInt2000.to_string(), "SPECint2000");
        assert_eq!(Suite::Windows.to_string(), "Windows");
    }
}
