//! Property tests over all 20 benchmark models.

use cce_dbt::TraceEvent;
use cce_workloads::catalog;
use proptest::prelude::*;

fn model_names() -> Vec<&'static str> {
    vec![
        "gzip", "vpr", "gcc", "mcf", "crafty", "parser", "eon", "perlbmk", "gap", "vortex",
        "bzip2", "twolf", "iexplore", "outlook", "photoshop", "pinball", "powerpoint",
        "visualstudio", "winzip", "word",
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn traces_are_complete_and_well_formed(
        name in prop::sample::select(model_names()),
        seed in 0u64..100,
    ) {
        let model = catalog::by_name(name).expect("table 1 name");
        // Tiny scale keeps the big Windows apps fast.
        let scale = 0.03;
        let trace = model.trace(scale, seed);
        let n = trace.superblocks.len();
        prop_assert_eq!(n, model.scaled_superblocks(scale));

        let mut touched = vec![false; n];
        let mut prev: Option<u64> = None;
        for ev in &trace.events {
            let TraceEvent::Access { id, direct_from } = ev;
            prop_assert!((id.0 as usize) < n, "event references unknown block");
            touched[id.0 as usize] = true;
            if let Some(f) = direct_from {
                // A direct transition always names the immediately
                // preceding access — that is what "direct" means.
                prop_assert_eq!(Some(f.0), prev, "direct_from must be the previous access");
            }
            prev = Some(id.0);
        }
        prop_assert!(touched.iter().all(|&t| t), "{name}: untouched superblocks");

        for sb in &trace.superblocks {
            prop_assert!((32..=2048).contains(&sb.size));
            prop_assert!(sb.exits >= 1);
        }
    }

    #[test]
    fn first_touch_order_matches_formation_order(
        name in prop::sample::select(vec!["gzip", "gcc", "pinball"]),
        seed in 0u64..50,
    ) {
        let trace = catalog::by_name(name).unwrap().trace(0.05, seed);
        // The id space is assigned in formation order, so the first touch
        // of id k must come after the first touch of id k-1.
        let mut seen_up_to: i64 = -1;
        for ev in &trace.events {
            let TraceEvent::Access { id, .. } = ev;
            let id = id.0 as i64;
            if id > seen_up_to {
                prop_assert_eq!(id, seen_up_to + 1, "formation order violated");
                seen_up_to = id;
            }
        }
    }

    #[test]
    fn different_seeds_differ_and_same_seed_agrees(
        name in prop::sample::select(model_names()),
        seed in 0u64..100,
    ) {
        let m = catalog::by_name(name).unwrap();
        let a = m.trace(0.03, seed);
        let b = m.trace(0.03, seed);
        prop_assert_eq!(&a, &b);
        let c = m.trace(0.03, seed.wrapping_add(1));
        prop_assert_ne!(&a, &c);
    }
}
