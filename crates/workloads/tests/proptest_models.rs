//! Randomized tests over all 20 benchmark models.
//!
//! Seeded deterministic sampling with [`cce_util::StdRng`] replaces the
//! old proptest harness — the build environment is offline.

use cce_dbt::TraceEvent;
use cce_util::{Rng, StdRng};
use cce_workloads::catalog;

fn model_names() -> Vec<&'static str> {
    vec![
        "gzip",
        "vpr",
        "gcc",
        "mcf",
        "crafty",
        "parser",
        "eon",
        "perlbmk",
        "gap",
        "vortex",
        "bzip2",
        "twolf",
        "iexplore",
        "outlook",
        "photoshop",
        "pinball",
        "powerpoint",
        "visualstudio",
        "winzip",
        "word",
    ]
}

/// Draws `cases` random (name, seed) pairs over the whole catalog.
fn sample_cases(base_seed: u64, cases: u32) -> Vec<(&'static str, u64)> {
    let names = model_names();
    let mut rng = StdRng::seed_from_u64(base_seed);
    (0..cases)
        .map(|_| {
            (
                names[rng.gen_range(0..names.len())],
                rng.gen_range(0..100u64),
            )
        })
        .collect()
}

#[test]
fn traces_are_complete_and_well_formed() {
    for (name, seed) in sample_cases(0x3D0D_0001, 40) {
        let model = catalog::by_name(name).expect("table 1 name");
        // Tiny scale keeps the big Windows apps fast.
        let scale = 0.03;
        let trace = model.trace(scale, seed);
        let n = trace.superblocks.len();
        assert_eq!(n, model.scaled_superblocks(scale), "{name} seed {seed}");

        let mut touched = vec![false; n];
        let mut prev: Option<u64> = None;
        for ev in &trace.events {
            let TraceEvent::Access { id, direct_from } = ev;
            assert!(
                (id.0 as usize) < n,
                "{name} seed {seed}: event references unknown block"
            );
            touched[id.0 as usize] = true;
            if let Some(f) = direct_from {
                // A direct transition always names the immediately
                // preceding access — that is what "direct" means.
                assert_eq!(
                    Some(f.0),
                    prev,
                    "{name} seed {seed}: direct_from must be the previous access"
                );
            }
            prev = Some(id.0);
        }
        assert!(
            touched.iter().all(|&t| t),
            "{name} seed {seed}: untouched superblocks"
        );

        for sb in &trace.superblocks {
            assert!((32..=2048).contains(&sb.size), "{name} seed {seed}");
            assert!(sb.exits >= 1, "{name} seed {seed}");
        }
    }
}

#[test]
fn first_touch_order_matches_formation_order() {
    let names = ["gzip", "gcc", "pinball"];
    let mut rng = StdRng::seed_from_u64(0x3D0D_0002);
    for _ in 0..24 {
        let name = names[rng.gen_range(0..names.len())];
        let seed = rng.gen_range(0..50u64);
        let trace = catalog::by_name(name).unwrap().trace(0.05, seed);
        // The id space is assigned in formation order, so the first touch
        // of id k must come after the first touch of id k-1.
        let mut seen_up_to: i64 = -1;
        for ev in &trace.events {
            let TraceEvent::Access { id, .. } = ev;
            let id = id.0 as i64;
            if id > seen_up_to {
                assert_eq!(
                    id,
                    seen_up_to + 1,
                    "{name} seed {seed}: formation order violated"
                );
                seen_up_to = id;
            }
        }
    }
}

#[test]
fn different_seeds_differ_and_same_seed_agrees() {
    for (name, seed) in sample_cases(0x3D0D_0003, 40) {
        let m = catalog::by_name(name).unwrap();
        let a = m.trace(0.03, seed);
        let b = m.trace(0.03, seed);
        assert_eq!(a, b, "{name} seed {seed}");
        let c = m.trace(0.03, seed.wrapping_add(1));
        assert_ne!(a, c, "{name} seed {seed}");
    }
}
