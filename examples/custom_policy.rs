//! Plugging a custom eviction policy into the code cache.
//!
//! `CacheOrg` is the extension point: anything that can place superblocks
//! and stream its eviction decisions into an `EventSink` can be boxed
//! into a `CodeCache`, and the link bookkeeping, statistics, the event
//! pipeline and the whole simulator stack come for free.
//!
//! The custom policy here is **half-flush FIFO**: when the cache is full,
//! evict the *older half* of the resident superblocks in one invocation.
//! It is a granularity the paper does not test — adaptive in bytes (half
//! of whatever is resident) rather than fixed units — and lands, as one
//! would now predict, between 2-unit FIFO and fine FIFO.
//!
//! The example also runs `cce::core::testutil::conformance` against the
//! policy — the same contract suite the seven built-in organizations
//! pass, including the event-grammar invariants.
//!
//! Run with: `cargo run --release --example custom_policy`

use cce::core::{
    testutil, CacheError, CacheEvent, CacheOrg, CodeCache, EventSink, EvictionScope, Granularity,
    InsertRequest, NullSink, SuperblockId, UnitId,
};
use cce::sim::metrics::unified_miss_rate;
use cce::workloads::catalog;
use std::collections::{HashMap, VecDeque};
use std::error::Error;

/// Evicts the older half of the cache in a single invocation when full.
#[derive(Debug)]
struct HalfFlush {
    capacity: u64,
    used: u64,
    queue: VecDeque<(SuperblockId, u32)>,
    resident: HashMap<SuperblockId, u32>,
}

impl HalfFlush {
    fn new(capacity: u64) -> Result<HalfFlush, CacheError> {
        if capacity == 0 {
            return Err(CacheError::ZeroCapacity);
        }
        Ok(HalfFlush {
            capacity,
            used: 0,
            queue: VecDeque::new(),
            resident: HashMap::new(),
        })
    }
}

impl CacheOrg for HalfFlush {
    fn capacity(&self) -> u64 {
        self.capacity
    }

    fn used(&self) -> u64 {
        self.used
    }

    fn contains(&self, id: SuperblockId) -> bool {
        self.resident.contains_key(&id)
    }

    fn unit_of(&self, id: SuperblockId) -> Option<UnitId> {
        // Two generations: the older half and the newer half.
        let pos = self.queue.iter().position(|&(q, _)| q == id)?;
        Some(UnitId(u64::from(pos >= self.queue.len() / 2)))
    }

    fn insert_events(
        &mut self,
        id: SuperblockId,
        size: u32,
        _partner: Option<SuperblockId>,
        sink: &mut dyn EventSink,
    ) -> Result<(), CacheError> {
        if self.resident.contains_key(&id) {
            return Err(CacheError::AlreadyResident(id));
        }
        if size == 0 {
            return Err(CacheError::ZeroSize(id));
        }
        if u64::from(size) > self.capacity {
            return Err(CacheError::BlockTooLarge {
                id,
                size,
                max: self.capacity,
            });
        }
        if self.used + u64::from(size) > self.capacity {
            // Evict the older half (at least enough for the newcomer) as
            // one invocation — a single Eq. 2 charge.
            let mut scope = EvictionScope::new(sink);
            let target = (self.used / 2).max(u64::from(size));
            let mut freed = 0u64;
            while freed < target {
                let Some((old, old_size)) = self.queue.pop_front() else {
                    break;
                };
                self.resident.remove(&old);
                self.used -= u64::from(old_size);
                freed += u64::from(old_size);
                scope.evict(old, old_size);
            }
            scope.finish();
        }
        self.queue.push_back((id, size));
        self.resident.insert(id, size);
        self.used += u64::from(size);
        sink.event(CacheEvent::Inserted { id, size });
        Ok(())
    }

    fn resident_count(&self) -> usize {
        self.resident.len()
    }

    fn resident_entries(&self) -> Vec<(SuperblockId, u32)> {
        self.queue.iter().copied().collect()
    }

    fn granularity(&self) -> Granularity {
        // Closest fixed label: two generations.
        Granularity::units(2)
    }

    fn flush_events(&mut self, sink: &mut dyn EventSink) -> bool {
        let mut scope = EvictionScope::new(sink);
        for &(id, size) in &self.queue {
            scope.evict(id, size);
        }
        self.queue.clear();
        self.resident.clear();
        self.used = 0;
        scope.finish()
    }
}

fn main() -> Result<(), Box<dyn Error>> {
    // The same contract suite the built-in organizations pass — event
    // grammar included. Panics on any violation.
    testutil::conformance(Box::new(HalfFlush::new(1024)?));
    println!("conformance: ok (event grammar, residency, rejection, flush)\n");

    let model = catalog::by_name("vortex").expect("table 1 benchmark");
    let trace = model.trace(0.4, 3);
    let capacity = trace.max_cache_bytes() / 4; // pressure 4
    let sizes: HashMap<SuperblockId, u32> =
        trace.superblocks.iter().map(|s| (s.id, s.size)).collect();

    // Replay the trace against the custom policy by hand (the simulator
    // does the same thing for the built-ins), on the allocation-free
    // event path.
    let run_custom = || -> Result<(u64, u64, u64), Box<dyn Error>> {
        let mut cache = CodeCache::new(Box::new(HalfFlush::new(capacity)?));
        for ev in &trace.events {
            let cce::dbt::TraceEvent::Access { id, direct_from } = *ev;
            if cache.access(id).is_miss() {
                cache.insert_request(InsertRequest::new(id, sizes[&id]), &mut NullSink)?;
            }
            if let Some(from) = direct_from {
                if cache.is_resident(from) && cache.is_resident(id) {
                    cache.link(from, id)?;
                }
            }
        }
        let s = cache.stats();
        Ok((s.misses, s.accesses, s.eviction_invocations))
    };
    let (misses, accesses, invocations) = run_custom()?;

    println!("vortex @ pressure 4, capacity {} KB", capacity / 1024);
    println!(
        "custom half-flush : miss {:.2}%  ({invocations} eviction invocations)",
        unified_miss_rate([(misses, accesses)]) * 100.0
    );

    // Compare against the built-in spectrum via the simulator.
    for g in [
        Granularity::Flush,
        Granularity::units(2),
        Granularity::units(8),
        Granularity::Superblock,
    ] {
        let r = cce::sim::Replay::new(&trace)
            .granularity(g)
            .capacity(capacity)
            .run()?
            .into_solo();
        println!(
            "{:>18}: miss {:.2}%  ({} eviction invocations)",
            g.label(),
            r.stats.miss_rate() * 100.0,
            r.stats.eviction_invocations
        );
    }
    Ok(())
}
