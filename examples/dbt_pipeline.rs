//! The full dynamic-binary-translation pipeline, end to end:
//!
//! 1. generate a phased TinyVM guest program;
//! 2. run it under the DBT with an unbounded cache to measure `maxCache`;
//! 3. re-run with a pressured cache at two granularities;
//! 4. re-run with chaining disabled (the Table 2 scenario);
//! 5. save the trace log, reload it, and replay it in the simulator —
//!    the paper's save-and-reuse methodology;
//! 6. save the same log in the chunked binary format and replay it
//!    *streaming* — decode overlapped with simulation, identical result.
//!
//! Run with: `cargo run --release --example dbt_pipeline`

use cce::core::Granularity;
use cce::dbt::engine::{Engine, EngineConfig};
use cce::dbt::{TraceLog, TraceReader};
use cce::sim::{Replay, SimConfig};
use cce::tinyvm::gen::{generate, GenConfig};
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    // A guest program with phases, loops and data-dependent branches.
    let gen_cfg = GenConfig {
        seed: 2026,
        phases: 5,
        leaf_funcs_per_phase: 10,
        trip_counts: (6, 14),
        ..GenConfig::default()
    };
    let program = generate(&gen_cfg);
    println!(
        "guest program: {} functions, {} basic blocks, {} byte image",
        program.functions().len(),
        program.block_count(),
        program.image_len()
    );

    // 1) Unbounded run: measure the code footprint.
    let base = EngineConfig {
        name: "dbt-pipeline".to_owned(),
        hot_threshold: 20, // the demo program is small; go hot sooner
        ..EngineConfig::default()
    };
    let mut engine = Engine::new(&program, base.clone())?;
    let unbounded = engine.run(200_000_000);
    println!(
        "\nunbounded: {} superblocks formed, maxCache = {} bytes, \
         {:.1}% of superblock entries rode links",
        unbounded.superblocks_formed,
        unbounded.max_cache_bytes,
        unbounded.dispatch.linked_fraction() * 100.0
    );
    let trace = engine.into_trace();

    // 2) Pressured runs at two granularities.
    for g in [Granularity::Flush, Granularity::units(8)] {
        let mut cfg = base.clone();
        cfg.granularity = g;
        cfg.cache_capacity = Some((unbounded.max_cache_bytes / 3).max(4096));
        let mut engine = Engine::new(&program, cfg)?;
        let run = engine.run(200_000_000);
        println!(
            "pressure 3, {:>6}: miss rate {:.2}%, {} regenerations, {} eviction invocations",
            g.label(),
            run.cache_stats.miss_rate() * 100.0,
            run.regenerations,
            run.cache_stats.eviction_invocations
        );
    }

    // 3) Chaining off: every superblock entry pays the dispatcher.
    let mut nochain = base.clone();
    nochain.chaining = false;
    let mut engine = Engine::new(&program, nochain)?;
    let run = engine.run(200_000_000);
    println!(
        "chaining disabled: {} dispatched entries, 0 linked (was {:.1}% linked)",
        run.dispatch.dispatched_entries,
        unbounded.dispatch.linked_fraction() * 100.0
    );

    // 4) Save → load → replay (repeatability, §4.1).
    let path = std::env::temp_dir().join("cce_dbt_pipeline_trace.json");
    trace.save(std::fs::File::create(&path)?)?;
    let reloaded = TraceLog::load(std::fs::File::open(&path)?)?;
    assert_eq!(trace, reloaded);
    let sim_cfg = SimConfig {
        granularity: Granularity::units(4),
        capacity: (reloaded.max_cache_bytes() / 2).max(4096),
        ..SimConfig::default()
    };
    let result = Replay::new(&reloaded).config(&sim_cfg).run()?.into_solo();
    println!(
        "\nreplayed saved log at pressure 2, 4-unit FIFO: miss rate {:.2}%, \
         overhead {:.2e} instructions",
        result.stats.miss_rate() * 100.0,
        result.total_overhead()
    );
    let json_len = std::fs::metadata(&path)?.len();
    std::fs::remove_file(&path).ok();

    // 5) The same log as a chunked binary file, replayed streaming: the
    //    decode thread stays a couple of chunks ahead of the simulator,
    //    so peak memory is O(chunk) — and the result is bit-identical.
    let bin_path = std::env::temp_dir().join("cce_dbt_pipeline_trace.cbt");
    // Small chunks so the bounded buffering is visible on a demo-sized
    // trace (production files use the 64K-event default).
    cce::dbt::trace_bin::save_binary_chunked(&trace, std::fs::File::create(&bin_path)?, 2048)?;
    let mut reader = TraceReader::open(&bin_path)?;
    let streamed = Replay::stream(&mut reader)
        .config(&sim_cfg)
        .run()?
        .into_solo();
    assert_eq!(result, streamed, "streaming replay must match in-memory");
    println!(
        "streamed binary log ({} bytes vs {json_len} JSON): identical result, \
         peak buffered events {} of {}",
        std::fs::metadata(&bin_path)?.len(),
        reader.high_water_events(),
        trace.events.len()
    );
    std::fs::remove_file(&bin_path).ok();
    Ok(())
}
