//! Interactive Windows applications: the workloads that stress code-cache
//! management hardest (paper §4.1 — "the rate and amount of generated
//! code in these applications tests the limits of code cache management").
//!
//! Compares FLUSH, 8-unit FIFO and fine FIFO per application at cache
//! pressure 4, including the back-pointer-table footprint.
//!
//! Run with: `cargo run --release --example interactive_apps [scale]`

use cce::core::Granularity;
use cce::sim::pressure::simulate_at_pressure;
use cce::sim::report::TextTable;
use cce::sim::simulator::SimConfig;
use cce::workloads::catalog;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let scale: f64 = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(0.3);
    let granularities = [
        Granularity::Flush,
        Granularity::units(8),
        Granularity::Superblock,
    ];
    let mut t = TextTable::new(
        &format!("Interactive Windows applications at pressure 4 (scale {scale})"),
        [
            "app",
            "superblocks",
            "maxCache (KB)",
            "FLUSH miss",
            "8-Unit miss",
            "FIFO miss",
            "8-Unit evictions",
            "back-ptr table",
        ],
    );
    for model in catalog::windows() {
        eprintln!("  {}…", model.name);
        let trace = model.trace(scale, 11);
        let base = SimConfig::default();
        let mut miss = Vec::new();
        let mut evictions8 = 0;
        for g in granularities {
            let r = simulate_at_pressure(&trace, g, 4, &base)?;
            miss.push(r.stats.miss_rate());
            if g == Granularity::units(8) {
                evictions8 = r.stats.eviction_invocations;
            }
        }
        let summary = trace.summary();
        let backptr_bytes =
            (summary.mean_out_degree * summary.superblock_count as f64 * 16.0) as u64;
        t.row([
            model.name.clone(),
            summary.superblock_count.to_string(),
            format!("{:.0}", summary.total_code_bytes as f64 / 1024.0),
            format!("{:.2}%", miss[0] * 100.0),
            format!("{:.2}%", miss[1] * 100.0),
            format!("{:.2}%", miss[2] * 100.0),
            evictions8.to_string(),
            format!("{:.0} KB", backptr_bytes as f64 / 1024.0),
        ]);
    }
    println!("{t}");
    println!(
        "The big code producers (word, iexplore, powerpoint) show the largest FLUSH\n\
         penalty — exactly the workloads the paper says make bounded caches mandatory."
    );
    Ok(())
}
