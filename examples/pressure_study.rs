//! Pressure study: one benchmark across the full (granularity × pressure)
//! grid — a per-benchmark version of the paper's Figures 7/11.
//!
//! Run with: `cargo run --release --example pressure_study [benchmark]`

use cce::core::Granularity;
use cce::sim::pressure::{default_pressures, sweep_trace};
use cce::sim::report::TextTable;
use cce::sim::simulator::SimConfig;
use cce::workloads::catalog;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "crafty".to_owned());
    let model = catalog::by_name(&name)
        .ok_or_else(|| format!("unknown benchmark {name}; try one of Table 1"))?;
    eprintln!("generating {name} trace…");
    let trace = model.trace(0.5, 7);
    let granularities = Granularity::spectrum(6); // FLUSH … 64-unit, FIFO
    let pressures = default_pressures();

    let points = sweep_trace(&trace, &granularities, &pressures, &SimConfig::default())?;

    // Miss-rate table.
    let mut headers = vec!["granularity".to_owned()];
    headers.extend(pressures.iter().map(|p| format!("p={p}")));
    let mut misses = TextTable::new(&format!("{name}: miss rate"), headers.clone());
    let mut overheads = TextTable::new(
        &format!("{name}: management overhead relative to FLUSH (incl. links)"),
        headers,
    );
    for g in &granularities {
        let mut mrow = vec![g.label()];
        let mut orow = vec![g.label()];
        for &p in &pressures {
            let cell = points
                .iter()
                .find(|pt| pt.granularity == *g && pt.pressure == p)
                .expect("full grid");
            mrow.push(format!("{:.2}%", cell.result.stats.miss_rate() * 100.0));
            let flush = points
                .iter()
                .find(|pt| pt.granularity == granularities[0] && pt.pressure == p)
                .expect("full grid");
            orow.push(format!(
                "{:.0}%",
                cell.result.total_overhead() / flush.result.total_overhead() * 100.0
            ));
        }
        misses.row(mrow);
        overheads.row(orow);
    }
    println!("{misses}");
    println!("{overheads}");
    println!(
        "Reading: the overhead minimum sits at a medium unit count, and fine FIFO's \
         advantage over FLUSH shrinks (or reverses) as pressure rises — the paper's headline."
    );
    Ok(())
}
