//! Quickstart: drive a code cache by hand, then simulate a real workload.
//!
//! Run with: `cargo run --release --example quickstart`

use cce::core::{
    CodeCache, EventBuffer, Granularity, InsertReport, InsertRequest, NullSink, SuperblockId,
};
use cce::sim::{Replay, SimConfig};
use cce::workloads::catalog;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    // --- Part 1: the cache API ------------------------------------------
    // A 4 KiB code cache split into 4 FIFO units (a medium granularity).
    let mut cache = CodeCache::with_granularity(Granularity::units(4), 4096)?;

    // A dynamic optimizer would insert freshly translated superblocks and
    // chain the exits it observes. `insert_request` streams eviction
    // events into the sink you hand it; `NullSink` discards them when
    // only the side effects matter.
    let (a, b, c) = (SuperblockId(1), SuperblockId(2), SuperblockId(3));
    cache.insert_request(InsertRequest::new(a, 900), &mut NullSink)?;
    cache.insert_request(InsertRequest::new(b, 700), &mut NullSink)?;
    cache.insert_request(InsertRequest::new(c, 400), &mut NullSink)?;
    cache.link(a, b)?; // a's exit patched to jump straight to b
    cache.link(b, a)?; // and back: a hot loop across two superblocks
    cache.link(c, c)?; // a self-loop

    println!(
        "resident: {} blocks / {} of {} bytes",
        cache.resident_count(),
        cache.used(),
        cache.capacity()
    );
    println!("links live: {}", cache.link_graph().link_count());

    // Keep inserting until the cache must evict a whole unit. To inspect
    // the victims, capture the event stream and materialize it into an
    // owned report.
    let mut next = 10u64;
    let mut buf = EventBuffer::new();
    let report = loop {
        buf.clear();
        let s = cache.insert_request(InsertRequest::new(SuperblockId(next), 500), &mut buf)?;
        next += 1;
        if s.evictions > 0 {
            break InsertReport::from_events(buf.events());
        }
    };
    let ev = &report.evictions[0];
    println!(
        "first eviction: {} blocks, {} bytes freed, {} unlink operations",
        ev.evicted.len(),
        ev.bytes,
        ev.unlinked.len()
    );
    println!("stats so far: {:#?}", cache.stats());

    // --- Part 2: a paper workload through the simulator ------------------
    // gzip at half its Table-1 size, cache pressure 2, 8-unit FIFO.
    let trace = catalog::by_name("gzip")
        .expect("table 1 benchmark")
        .trace(0.5, 42);
    let config = SimConfig {
        granularity: Granularity::units(8),
        capacity: trace.max_cache_bytes() / 2,
        ..SimConfig::default()
    };
    let result = Replay::new(&trace).config(&config).run()?.into_solo();
    println!(
        "\ngzip @ pressure 2, 8-unit FIFO: miss rate {:.2}%, {} eviction invocations, \
         management overhead {:.2e} instructions",
        result.stats.miss_rate() * 100.0,
        result.stats.eviction_invocations,
        result.total_overhead()
    );
    Ok(())
}
