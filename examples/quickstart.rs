//! Quickstart: drive a code cache by hand, then simulate a real workload.
//!
//! Run with: `cargo run --release --example quickstart`

use cce::core::{CodeCache, Granularity, SuperblockId};
use cce::sim::simulator::{simulate, SimConfig};
use cce::workloads::catalog;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    // --- Part 1: the cache API ------------------------------------------
    // A 4 KiB code cache split into 4 FIFO units (a medium granularity).
    let mut cache = CodeCache::with_granularity(Granularity::units(4), 4096)?;

    // A dynamic optimizer would insert freshly translated superblocks and
    // chain the exits it observes.
    let (a, b, c) = (SuperblockId(1), SuperblockId(2), SuperblockId(3));
    cache.insert(a, 900)?;
    cache.insert(b, 700)?;
    cache.insert(c, 400)?;
    cache.link(a, b)?; // a's exit patched to jump straight to b
    cache.link(b, a)?; // and back: a hot loop across two superblocks
    cache.link(c, c)?; // a self-loop

    println!(
        "resident: {} blocks / {} of {} bytes",
        cache.resident_count(),
        cache.used(),
        cache.capacity()
    );
    println!("links live: {}", cache.link_graph().link_count());

    // Keep inserting until the cache must evict a whole unit.
    let mut next = 10u64;
    let report = loop {
        let r = cache.insert(SuperblockId(next), 500)?;
        next += 1;
        if r.evicted_anything() {
            break r;
        }
    };
    let ev = &report.evictions[0];
    println!(
        "first eviction: {} blocks, {} bytes freed, {} unlink operations",
        ev.evicted.len(),
        ev.bytes,
        ev.unlinked.len()
    );
    println!("stats so far: {:#?}", cache.stats());

    // --- Part 2: a paper workload through the simulator ------------------
    // gzip at half its Table-1 size, cache pressure 2, 8-unit FIFO.
    let trace = catalog::by_name("gzip")
        .expect("table 1 benchmark")
        .trace(0.5, 42);
    let config = SimConfig {
        granularity: Granularity::units(8),
        capacity: trace.max_cache_bytes() / 2,
        ..SimConfig::default()
    };
    let result = simulate(&trace, &config)?;
    println!(
        "\ngzip @ pressure 2, 8-unit FIFO: miss rate {:.2}%, {} eviction invocations, \
         management overhead {:.2e} instructions",
        result.stats.miss_rate() * 100.0,
        result.stats.eviction_invocations,
        result.total_overhead()
    );
    Ok(())
}
