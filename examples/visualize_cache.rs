//! Visualizing cache occupancy and superblock interconnectivity —
//! the paper's §5.4 "analysis and visualization" future work.
//!
//! Prints an ASCII occupancy chart of a pressured cache mid-run and
//! writes the live link graph as Graphviz DOT (render with
//! `dot -Tsvg /tmp/cce_links.dot -o links.svg`).
//!
//! Run with: `cargo run --release --example visualize_cache`

use cce::core::visualize::{link_graph_dot, occupancy_chart};
use cce::core::{CodeCache, Granularity, InsertRequest, NullSink, SuperblockId};
use cce::dbt::TraceEvent;
use cce::workloads::catalog;
use std::collections::HashMap;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let model = catalog::by_name("twolf").expect("table 1 benchmark");
    let trace = model.trace(0.2, 8);
    let capacity = trace.max_cache_bytes() / 3;
    let sizes: HashMap<SuperblockId, u32> =
        trace.superblocks.iter().map(|s| (s.id, s.size)).collect();

    // Replay half the trace into an 8-unit cache, then snapshot.
    let mut cache = CodeCache::with_granularity(Granularity::units(8), capacity)?;
    for ev in trace.events.iter().take(trace.events.len() / 2) {
        let TraceEvent::Access { id, direct_from } = *ev;
        if cache.access(id).is_miss() {
            cache.insert_request(InsertRequest::new(id, sizes[&id]), &mut NullSink)?;
        }
        if let Some(from) = direct_from {
            if cache.is_resident(from) && cache.is_resident(id) {
                cache.link(from, id)?;
            }
        }
    }

    println!("{}", occupancy_chart(&cache));
    let (intra, inter) = cache.link_census();
    println!(
        "live links: {} intra-unit, {} inter-unit ({:.1}% would need unpatching \
         if their target's unit flushed)",
        intra,
        inter,
        inter as f64 / (intra + inter).max(1) as f64 * 100.0
    );

    let dot = link_graph_dot(&cache);
    let path = std::env::temp_dir().join("cce_links.dot");
    std::fs::write(&path, &dot)?;
    println!(
        "\nwrote {} ({} nodes, render with: dot -Tsvg {} -o links.svg)",
        path.display(),
        cache.resident_count(),
        path.display()
    );
    Ok(())
}
