//! # cce — code cache eviction granularities
//!
//! Umbrella crate for the reproduction of *Exploring Code Cache Eviction
//! Granularities in Dynamic Optimization Systems* (Hazelwood & Smith,
//! CGO 2004). It re-exports the workspace crates under stable paths:
//!
//! * [`core`] — the software code cache with the FLUSH /
//!   N-unit FIFO / fine-FIFO eviction spectrum, chaining and back-pointer
//!   bookkeeping (the paper's contribution);
//! * [`tinyvm`] — the guest ISA, interpreter and program
//!   generators;
//! * [`dbt`] — the dynamic binary translator (profiling, NET
//!   superblock formation, translation, chaining, trace logs);
//! * [`workloads`] — the paper's 20 benchmarks as
//!   calibrated statistical models;
//! * [`sim`] — trace-driven simulation, the Eq. 2–4 overhead
//!   models, regression, pressure sweeps and execution-time estimates.
//!
//! # Quick start
//!
//! Inserts go through one evented entry point, [`core::CodeCache::insert_request`];
//! the [`core::CacheSession`] trait drives a bare cache and a
//! [`core::ShardedCache`] identically:
//!
//! ```
//! use cce::core::{CacheSession, CodeCache, Granularity, InsertRequest, SuperblockId};
//!
//! let mut cache = CodeCache::with_granularity(Granularity::units(8), 64 * 1024)?;
//! let outcome = cache.access_or_insert_quiet(InsertRequest::new(SuperblockId(1), 230))?;
//! assert!(outcome.is_miss());
//! assert!(cache.access(SuperblockId(1)).is_hit());
//! # Ok::<(), cce::core::CacheError>(())
//! ```
//!
//! See the `examples/` directory for end-to-end scenarios and
//! `cce-experiments` for the per-figure regenerators.

#![deny(unsafe_code)]

pub use cce_core as core;
pub use cce_dbt as dbt;
pub use cce_sim as sim;
pub use cce_tinyvm as tinyvm;
pub use cce_workloads as workloads;
