//! Cross-crate integration: the DBT engine, the trace log and the
//! simulator must agree with each other exactly.

use cce::core::Granularity;
use cce::dbt::engine::{Engine, EngineConfig};
use cce::dbt::TraceLog;
use cce::sim::simulator::{SimConfig, SimError, SimResult};
use cce::sim::{EventSource, Replay};

/// All replays in this suite are solo; route them through the one
/// front-door builder and unwrap the single-tenant report.
fn simulate<T: EventSource>(trace: &T, config: &SimConfig) -> Result<SimResult, SimError> {
    Replay::new(trace)
        .config(config)
        .run()
        .map(cce::sim::ReplayReport::into_solo)
}
use cce::tinyvm::gen::{generate, GenConfig};
use cce::tinyvm::interp::{Interp, StopReason};

fn engine_config(granularity: Granularity, capacity: Option<u64>) -> EngineConfig {
    EngineConfig {
        hot_threshold: 2,
        granularity,
        cache_capacity: capacity,
        ..EngineConfig::default()
    }
}

/// Replaying the engine's own trace log through the simulator at the same
/// cache geometry must reproduce the engine's cache statistics bit for
/// bit — the engine *is* a trace-driven simulation of its own execution.
#[test]
fn simulator_replay_matches_engine_statistics() {
    let program = generate(&GenConfig::small(21));
    // First, learn the footprint.
    let mut probe = Engine::new(&program, engine_config(Granularity::Superblock, None)).unwrap();
    let unbounded = probe.run(50_000_000);
    assert!(unbounded.max_cache_bytes > 0);

    for granularity in [
        Granularity::Flush,
        Granularity::units(4),
        Granularity::Superblock,
    ] {
        let capacity = (unbounded.max_cache_bytes / 3).max(4096);
        let mut engine = Engine::new(&program, engine_config(granularity, Some(capacity))).unwrap();
        let run = engine.run(50_000_000);
        let trace = engine.into_trace();

        let sim = simulate(
            &trace,
            &SimConfig {
                granularity,
                capacity,
                ..SimConfig::default()
            },
        )
        .unwrap();
        assert_eq!(
            sim.stats, run.cache_stats,
            "{granularity}: simulator replay diverged from the live engine"
        );
    }
}

/// Guest architectural state is independent of every cache decision: the
/// DBT must be transparent (the whole premise of dynamic optimization).
#[test]
fn dbt_is_transparent_to_guest_execution() {
    let program = generate(&GenConfig::small(22));
    let mut reference = Interp::new(&program);
    assert_eq!(reference.run(50_000_000), StopReason::Halted);

    for (granularity, capacity) in [
        (Granularity::Flush, Some(8192u64)),
        (Granularity::units(8), Some(16384)),
        (Granularity::Superblock, None),
    ] {
        let mut engine = Engine::new(&program, engine_config(granularity, capacity)).unwrap();
        let run = engine.run(50_000_000);
        assert_eq!(run.stop, StopReason::Halted);
        assert_eq!(run.guest_instructions, reference.instructions_retired());
        assert_eq!(run.blocks_entered, reference.blocks_entered());
    }
}

/// Save → load → replay gives identical results (the paper's log-reuse
/// methodology).
#[test]
fn saved_logs_replay_identically() {
    let program = generate(&GenConfig::small(23));
    let mut engine = Engine::new(&program, engine_config(Granularity::Superblock, None)).unwrap();
    let _ = engine.run(50_000_000);
    let trace = engine.into_trace();

    let mut buf = Vec::new();
    trace.save(&mut buf).unwrap();
    let reloaded = TraceLog::load(buf.as_slice()).unwrap();
    assert_eq!(trace, reloaded);

    let cfg = SimConfig {
        granularity: Granularity::units(2),
        capacity: (trace.max_cache_bytes() / 2).max(4096),
        ..SimConfig::default()
    };
    assert_eq!(
        simulate(&trace, &cfg).unwrap(),
        simulate(&reloaded, &cfg).unwrap()
    );
}

/// Workload-model traces and engine traces are interchangeable for the
/// simulator (same schema, same replay semantics).
#[test]
fn model_traces_and_engine_traces_share_the_pipeline() {
    let model_trace = cce::workloads::by_name("mcf").unwrap().trace(0.2, 9);
    let program = generate(&GenConfig::small(24));
    let mut engine = Engine::new(&program, engine_config(Granularity::Superblock, None)).unwrap();
    let _ = engine.run(50_000_000);
    let engine_trace = engine.into_trace();

    for trace in [&model_trace, &engine_trace] {
        let cfg = SimConfig {
            granularity: Granularity::units(4),
            capacity: (trace.max_cache_bytes() / 2).max(4096),
            ..SimConfig::default()
        };
        let r = simulate(trace, &cfg).unwrap();
        assert!(r.stats.accesses > 0);
        assert_eq!(r.stats.accesses, trace.events.len() as u64);
        assert_eq!(
            r.stats.misses,
            r.stats.cold_misses + r.stats.capacity_misses
        );
    }
}

/// Chaining changes dispatch economics, never guest results or miss
/// accounting of the underlying accesses.
#[test]
fn chaining_toggle_preserves_access_stream() {
    // Needs loops hot enough to re-run transitions after linking; the
    // default generator config iterates plenty.
    let program = generate(&GenConfig {
        seed: 25,
        ..GenConfig::default()
    });
    let run = |chaining: bool| {
        let mut cfg = engine_config(Granularity::Superblock, None);
        cfg.chaining = chaining;
        let mut engine = Engine::new(&program, cfg).unwrap();
        let summary = engine.run(50_000_000);
        (summary, engine.into_trace())
    };
    let (with, trace_with) = run(true);
    let (without, trace_without) = run(false);
    // The trace (what the program did) is identical; only link stats and
    // dispatch economics differ.
    assert_eq!(trace_with, trace_without);
    assert_eq!(with.cache_stats.accesses, without.cache_stats.accesses);
    assert_eq!(with.cache_stats.misses, without.cache_stats.misses);
    assert_eq!(without.cache_stats.links_created, 0);
    assert_eq!(without.dispatch.linked_entries, 0);
    assert!(with.dispatch.linked_entries > 0);
    assert!(
        with.dispatch.dispatched_entries < without.dispatch.dispatched_entries,
        "chaining must reduce dispatcher traffic"
    );
}
