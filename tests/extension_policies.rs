//! Integration tests for the beyond-the-paper policies (DESIGN.md §7):
//! preemptive flush, adaptive granularity and the LRU baseline.

use cce::core::{
    AdaptiveUnits, CacheOrg, CodeCache, InsertRequest, LruCache, NullSink, PreemptiveFlush,
    SuperblockId, UnitFifo,
};
use cce::workloads::catalog;
use std::collections::HashMap;

/// Replays a model trace against an arbitrary org-backed cache.
fn replay(mut cache: CodeCache, trace: &cce::dbt::TraceLog) -> CodeCache {
    let sizes: HashMap<SuperblockId, u32> =
        trace.superblocks.iter().map(|s| (s.id, s.size)).collect();
    for ev in &trace.events {
        let cce::dbt::TraceEvent::Access { id, direct_from } = *ev;
        if cache.access(id).is_miss() {
            match cache.insert_request(InsertRequest::new(id, sizes[&id]), &mut NullSink) {
                Ok(_) => {}
                Err(cce::core::CacheError::BlockTooLarge { .. }) => continue,
                Err(e) => panic!("insert failed: {e}"),
            }
        }
        if let Some(from) = direct_from {
            if cache.is_resident(from) && cache.is_resident(id) {
                cache.link(from, id).unwrap();
            }
        }
    }
    cache
}

#[test]
fn preemptive_flush_fires_on_phase_heavy_workloads() {
    // Interactive apps have many phases: the phase detector should find
    // real boundaries under pressure.
    let trace = catalog::by_name("winzip").unwrap().trace(0.15, 5);
    let capacity = trace.max_cache_bytes() / 4;
    let org = PreemptiveFlush::with_detector(capacity, 64, 0.5, 0.4).unwrap();
    let cache = replay(CodeCache::new(Box::new(org)), &trace);
    assert!(cache.stats().eviction_invocations > 0);
    // Preemptive flushing must never unlink through the back-pointer
    // table: whole-cache flushes drop links for free, like FLUSH.
    assert_eq!(cache.stats().unlink_operations, 0);
}

#[test]
fn preemptive_flush_is_competitive_with_plain_flush() {
    let trace = catalog::by_name("parser").unwrap().trace(0.15, 5);
    let capacity = trace.max_cache_bytes() / 6;
    let plain = replay(
        CodeCache::new(Box::new(UnitFifo::flush_policy(capacity).unwrap())),
        &trace,
    );
    let preemptive = replay(
        CodeCache::new(Box::new(PreemptiveFlush::new(capacity).unwrap())),
        &trace,
    );
    let plain_rate = plain.stats().miss_rate();
    let preemptive_rate = preemptive.stats().miss_rate();
    // Dynamo found preemptive flushing better than naïve flushing; at
    // minimum it must be in the same league (within 20% relative).
    assert!(
        preemptive_rate <= plain_rate * 1.2,
        "preemptive {preemptive_rate} vs plain {plain_rate}"
    );
}

#[test]
fn adaptive_units_move_toward_the_medium_grains() {
    let trace = catalog::by_name("crafty").unwrap().trace(0.2, 5);
    let capacity = trace.max_cache_bytes() / 6;
    // Start at the coarse extreme: miss pressure should drive the unit
    // count up.
    let mut org = AdaptiveUnits::new(capacity, 1, 1, 256).unwrap();
    org.set_epoch(64);
    let sizes: HashMap<SuperblockId, u32> =
        trace.superblocks.iter().map(|s| (s.id, s.size)).collect();
    let mut cache = CodeCache::new(Box::new(org));
    for ev in &trace.events {
        let cce::dbt::TraceEvent::Access { id, .. } = *ev;
        if cache.access(id).is_miss() {
            let _ = cache.insert_request(InsertRequest::new(id, sizes[&id]), &mut NullSink);
        }
    }
    let label = cache.granularity().label();
    assert_ne!(label, "FLUSH", "adaptation never left the coarse extreme");
}

#[test]
fn lru_pays_fragmentation_on_real_workloads() {
    // §3.3's argument: variable-size blocks + recency eviction ⇒ holes.
    let trace = catalog::by_name("vortex").unwrap().trace(0.15, 5);
    let capacity = trace.max_cache_bytes() / 6;
    let cache = replay(
        CodeCache::new(Box::new(LruCache::new(capacity).unwrap())),
        &trace,
    );
    let org = cache.org();
    assert!(org.used() <= capacity);
    assert!(cache.stats().eviction_invocations > 0);
    // Down-cast via the debug formatting is ugly; instead rerun the raw
    // org to read its stall counter directly.
    let mut lru = LruCache::new(capacity).unwrap();
    let sizes: HashMap<SuperblockId, u32> =
        trace.superblocks.iter().map(|s| (s.id, s.size)).collect();
    let mut resident_misses = 0u64;
    for ev in &trace.events {
        let cce::dbt::TraceEvent::Access { id, .. } = *ev;
        if lru.contains(id) {
            lru.note_hit(id);
        } else {
            resident_misses += 1;
            let _ = lru.insert(id, sizes[&id]);
        }
    }
    assert!(resident_misses > 0);
    assert!(
        lru.fragmentation_stalls() > 0,
        "a churning variable-size LRU cache must hit fragmentation stalls"
    );
}

#[test]
fn fifo_family_never_fragments() {
    // The counterpoint to the LRU test: FIFO insertion order equals
    // address order, so capacity is always fully usable (no stalls, no
    // compaction) — the paper's §3.3 rationale for FIFO.
    let trace = catalog::by_name("vortex").unwrap().trace(0.15, 5);
    let capacity = trace.max_cache_bytes() / 6;
    let fine = replay(
        CodeCache::new(Box::new(cce::core::FineFifo::new(capacity).unwrap())),
        &trace,
    );
    // Every eviction invocation freed exactly contiguous FIFO-order
    // blocks; bookkeeping identity: bytes inserted = evicted + resident.
    let s = fine.stats();
    assert_eq!(s.bytes_inserted, s.bytes_evicted + fine.used());
}
