//! The paper's qualitative claims, checked at reduced scale.
//!
//! These are the assertions EXPERIMENTS.md reports at full scale; here
//! they run at a scale that keeps `cargo test` fast while still stressing
//! the caches.

use cce::core::Granularity;
use cce::sim::exectime::{ChainingScenario, DispatchCost};
use cce::sim::metrics::unified_miss_rate;
use cce::sim::pressure::simulate_at_pressure;
use cce::sim::simulator::SimConfig;
use cce::workloads::catalog;

const SCALE: f64 = 0.15;
const SEED: u64 = 1234;

fn unified(granularity: Granularity, pressure: u32) -> (f64, u64, f64, f64) {
    let mut pairs = Vec::new();
    let mut invocations = 0;
    let mut overhead_nolinks = 0.0;
    let mut overhead_links = 0.0;
    for m in catalog::all() {
        let trace = m.trace(SCALE, SEED);
        let r = simulate_at_pressure(&trace, granularity, pressure, &SimConfig::default())
            .expect("valid trace");
        pairs.push((r.stats.misses, r.stats.accesses));
        invocations += r.stats.eviction_invocations;
        overhead_nolinks += r.miss_overhead + r.eviction_overhead;
        overhead_links += r.total_overhead();
    }
    (
        unified_miss_rate(pairs),
        invocations,
        overhead_nolinks,
        overhead_links,
    )
}

#[test]
fn figure6_flush_misses_most_fifo_least() {
    let (flush, ..) = unified(Granularity::Flush, 2);
    let (medium, ..) = unified(Granularity::units(8), 2);
    let (fine, ..) = unified(Granularity::Superblock, 2);
    assert!(flush > medium, "FLUSH {flush} vs 8-unit {medium}");
    assert!(medium > fine, "8-unit {medium} vs FIFO {fine}");
}

#[test]
fn figure7_pressure_raises_miss_rates() {
    for g in [
        Granularity::Flush,
        Granularity::units(8),
        Granularity::Superblock,
    ] {
        let (low, ..) = unified(g, 2);
        let (high, ..) = unified(g, 10);
        assert!(high > low, "{g}: miss rate must rise with pressure");
    }
}

#[test]
fn figure8_eviction_invocations_fall_with_coarser_granularity() {
    let (_, flush, ..) = unified(Granularity::Flush, 2);
    let (_, unit8, ..) = unified(Granularity::units(8), 2);
    let (_, unit64, ..) = unified(Granularity::units(64), 2);
    let (_, fine, ..) = unified(Granularity::Superblock, 2);
    assert!(flush < unit8);
    assert!(unit8 < unit64);
    assert!(unit64 < fine);
    // Paper anchor: medium grains cut invocations by integer factors.
    assert!(fine as f64 / unit64 as f64 > 2.0);
}

#[test]
fn figures_10_14_medium_grains_beat_both_extremes_under_pressure() {
    let (_, _, flush_oh, flush_oh_l) = unified(Granularity::Flush, 10);
    let (_, _, fine_oh, fine_oh_l) = unified(Granularity::Superblock, 10);
    // The best medium grain beats FLUSH and fine FIFO (with and without
    // link-maintenance charges).
    let mut best = f64::INFINITY;
    let mut best_l = f64::INFINITY;
    for units in [4u32, 8, 16, 32] {
        let (_, _, oh, oh_l) = unified(Granularity::units(units), 10);
        best = best.min(oh);
        best_l = best_l.min(oh_l);
    }
    assert!(best < flush_oh, "medium {best} vs FLUSH {flush_oh}");
    assert!(best < fine_oh, "medium {best} vs FIFO {fine_oh}");
    assert!(best_l < flush_oh_l);
    assert!(best_l < fine_oh_l);
}

#[test]
fn figures_11_15_fine_fifo_advantage_shrinks_with_pressure() {
    let (_, _, _, flush_low) = unified(Granularity::Flush, 2);
    let (_, _, _, fine_low) = unified(Granularity::Superblock, 2);
    let (_, _, _, flush_high) = unified(Granularity::Flush, 10);
    let (_, _, _, fine_high) = unified(Granularity::Superblock, 10);
    let ratio_low = fine_low / flush_low;
    let ratio_high = fine_high / flush_high;
    assert!(
        ratio_high > ratio_low,
        "fine/FLUSH overhead ratio must rise with pressure: {ratio_low} → {ratio_high}"
    );
}

#[test]
fn figure13_inter_unit_links_rise_with_granularity() {
    let trace = catalog::by_name("gcc").unwrap().trace(SCALE, SEED);
    let base = SimConfig::default();
    let frac = |g| {
        simulate_at_pressure(&trace, g, 2, &base)
            .unwrap()
            .census_inter_fraction()
    };
    let flush = frac(Granularity::Flush);
    let two = frac(Granularity::units(2));
    let sixteen = frac(Granularity::units(16));
    let fine = frac(Granularity::Superblock);
    assert_eq!(flush, 0.0, "a single unit has no inter-unit links");
    assert!(two > 0.0);
    assert!(sixteen > two);
    assert!(
        fine > 0.9,
        "per-superblock units: almost every link crosses"
    );
    assert!(fine < 1.0, "self-links keep it under 100%");
}

#[test]
fn table2_slowdown_ordering_matches_paper() {
    let d = DispatchCost::dynamorio();
    let slowdown = |name: &str| {
        let m = catalog::by_name(name).unwrap();
        ChainingScenario {
            base_seconds: m.base_seconds,
            instrs_per_entry: m.instrs_per_entry,
        }
        .slowdown_percent(&d)
    };
    let gzip = slowdown("gzip");
    let mcf = slowdown("mcf");
    let vpr = slowdown("vpr");
    // Paper: gzip worst (3357%), mcf best (447%), vpr second best (643%).
    assert!(gzip > 2500.0);
    assert!(mcf < 600.0);
    assert!(vpr < 900.0);
    for name in [
        "gcc", "crafty", "parser", "perlbmk", "gap", "vortex", "bzip2", "twolf",
    ] {
        let s = slowdown(name);
        assert!(
            s > mcf && s < gzip,
            "{name} slowdown {s} out of Table 2's band"
        );
    }
}

#[test]
fn backpointer_table_memory_matches_section_5_1() {
    // §5.1: ~1.7 links per superblock at 16 bytes each ≈ 11.5% of the
    // code cache. Check our suite-wide ratio lands in that neighbourhood.
    let mut links = 0.0;
    let mut bytes = 0.0;
    for m in catalog::all() {
        let t = m.trace(SCALE, SEED);
        let s = t.summary();
        links += s.mean_out_degree * s.superblock_count as f64;
        bytes += s.total_code_bytes as f64;
    }
    let fraction = links * 16.0 / bytes;
    assert!(
        (0.05..0.20).contains(&fraction),
        "back-pointer table fraction {fraction} far from the paper's 11.5%"
    );
}
