//! Workspace-level property tests: the engine/simulator equivalence and
//! the trace-replay invariants must hold for arbitrary programs, cache
//! geometries and workload scales.

use cce::core::Granularity;
use cce::dbt::engine::{Engine, EngineConfig};
use cce::sim::simulator::{simulate, SimConfig};
use cce::tinyvm::gen::{generate, GenConfig};
use proptest::prelude::*;

fn granularity_strategy() -> impl Strategy<Value = Granularity> {
    prop_oneof![
        Just(Granularity::Flush),
        (1u32..=7).prop_map(|p| Granularity::units(1 << p)),
        Just(Granularity::Superblock),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The live engine and the trace-driven simulator are the same
    /// semantics, for any program and any cache geometry.
    #[test]
    fn engine_equals_simulator(
        seed in 0u64..1000,
        granularity in granularity_strategy(),
        pressure in 2u64..8,
        threshold in 2u32..6,
    ) {
        let program = generate(&GenConfig::small(seed));
        let mut probe_cfg = EngineConfig::default();
        probe_cfg.hot_threshold = threshold;
        let mut probe = Engine::new(&program, probe_cfg.clone()).unwrap();
        let unbounded = probe.run(20_000_000);
        prop_assume!(unbounded.superblocks_formed > 0);

        let capacity = (unbounded.max_cache_bytes / pressure).max(2048);
        let mut cfg = probe_cfg;
        cfg.granularity = granularity;
        cfg.cache_capacity = Some(capacity);
        let mut engine = Engine::new(&program, cfg).unwrap();
        let run = engine.run(20_000_000);
        let trace = engine.into_trace();

        let sim = simulate(
            &trace,
            &SimConfig { granularity, capacity, ..SimConfig::default() },
        )
        .unwrap();
        prop_assert_eq!(sim.stats, run.cache_stats);
    }

    /// Replay is insensitive to overhead charging: cost models observe,
    /// they never steer.
    #[test]
    fn overhead_charging_never_changes_behaviour(
        name in prop::sample::select(vec!["gzip", "mcf", "bzip2", "pinball"]),
        granularity in granularity_strategy(),
        seed in 0u64..50,
    ) {
        let trace = cce::workloads::by_name(name).unwrap().trace(0.1, seed);
        let capacity = (trace.max_cache_bytes() / 4).max(4096);
        let with = simulate(
            &trace,
            &SimConfig { granularity, capacity, charge_unlinks: true, ..SimConfig::default() },
        ).unwrap();
        let without = simulate(
            &trace,
            &SimConfig { granularity, capacity, charge_unlinks: false, ..SimConfig::default() },
        ).unwrap();
        prop_assert_eq!(&with.stats, &without.stats);
        prop_assert_eq!(without.unlink_overhead, 0.0);
        prop_assert!(with.unlink_overhead >= 0.0);
        // Eq. 3 lower bound: every miss costs at least the intercept.
        prop_assert!(with.miss_overhead >= with.stats.misses as f64 * 1922.0);
        // Eq. 2 lower bound: every invocation costs at least the intercept.
        prop_assert!(
            with.eviction_overhead >= with.stats.eviction_invocations as f64 * 3055.0
        );
    }

    /// Workload scaling preserves the trace's structural calibration.
    #[test]
    fn scaled_workloads_keep_their_shape(
        name in prop::sample::select(vec!["gzip", "vpr", "gap", "winzip"]),
        scale in 0.05f64..0.5,
        seed in 0u64..50,
    ) {
        let model = cce::workloads::by_name(name).unwrap();
        let trace = model.trace(scale, seed);
        let s = trace.summary();
        prop_assert_eq!(s.superblock_count, model.scaled_superblocks(scale));
        prop_assert!(s.accesses >= model.scaled_accesses(scale));
        // Median stays near the calibrated value at any scale; the
        // tolerance widens for tiny samples (the sample median of n
        // log-normal draws has standard error ~ σ·1.25/√n in log space).
        let n = s.superblock_count as f64;
        let tolerance = 0.15 + 2.0 / n.sqrt();
        let err = (f64::from(s.median_size) - f64::from(model.median_size)).abs();
        prop_assert!(err <= f64::from(model.median_size) * tolerance,
            "median {} vs {} (n={n}, tol {tolerance:.2})", s.median_size, model.median_size);
        // Out-degree respects the structural exit cap.
        prop_assert!(s.mean_out_degree <= 2.0 + 1e-9);
    }
}
