//! Workspace-level randomized tests: the engine/simulator equivalence
//! and the trace-replay invariants must hold for arbitrary programs,
//! cache geometries and workload scales.
//!
//! Seeded deterministic sampling with [`cce_util::StdRng`] replaces the
//! old proptest harness — the build environment is offline.

use cce::core::Granularity;
use cce::dbt::engine::{Engine, EngineConfig};
use cce::sim::simulator::{SimConfig, SimError, SimResult};
use cce::sim::{EventSource, Replay};

/// All replays in this suite are solo; route them through the one
/// front-door builder and unwrap the single-tenant report.
fn simulate<T: EventSource>(trace: &T, config: &SimConfig) -> Result<SimResult, SimError> {
    Replay::new(trace)
        .config(config)
        .run()
        .map(cce::sim::ReplayReport::into_solo)
}
use cce::tinyvm::gen::{generate, GenConfig};
use cce_util::{Rng, StdRng};

fn random_granularity(rng: &mut StdRng) -> Granularity {
    match rng.gen_range(0..9u32) {
        0 => Granularity::Flush,
        8 => Granularity::Superblock,
        p => Granularity::units(1 << p),
    }
}

/// The live engine and the trace-driven simulator are the same
/// semantics, for any program and any cache geometry.
#[test]
fn engine_equals_simulator() {
    for case in 0..24u64 {
        let mut rng = StdRng::seed_from_u64(0x1A7E_6001 ^ case);
        let seed = rng.gen_range(0..1000u64);
        let granularity = random_granularity(&mut rng);
        let pressure = rng.gen_range(2..8u64);
        let threshold = rng.gen_range(2..6u32);

        let program = generate(&GenConfig::small(seed));
        let probe_cfg = EngineConfig {
            hot_threshold: threshold,
            ..EngineConfig::default()
        };
        let mut probe = Engine::new(&program, probe_cfg.clone()).unwrap();
        let unbounded = probe.run(20_000_000);
        if unbounded.superblocks_formed == 0 {
            continue;
        }

        let capacity = (unbounded.max_cache_bytes / pressure).max(2048);
        let mut cfg = probe_cfg;
        cfg.granularity = granularity;
        cfg.cache_capacity = Some(capacity);
        let mut engine = Engine::new(&program, cfg).unwrap();
        let run = engine.run(20_000_000);
        let trace = engine.into_trace();

        let sim = simulate(
            &trace,
            &SimConfig {
                granularity,
                capacity,
                ..SimConfig::default()
            },
        )
        .unwrap();
        assert_eq!(sim.stats, run.cache_stats, "case {case} ({granularity})");
    }
}

/// Replay is insensitive to overhead charging: cost models observe,
/// they never steer.
#[test]
fn overhead_charging_never_changes_behaviour() {
    let names = ["gzip", "mcf", "bzip2", "pinball"];
    for case in 0..24u64 {
        let mut rng = StdRng::seed_from_u64(0x1A7E_6002 ^ case);
        let name = names[rng.gen_range(0..names.len())];
        let granularity = random_granularity(&mut rng);
        let seed = rng.gen_range(0..50u64);

        let trace = cce::workloads::by_name(name).unwrap().trace(0.1, seed);
        let capacity = (trace.max_cache_bytes() / 4).max(4096);
        let with = simulate(
            &trace,
            &SimConfig {
                granularity,
                capacity,
                charge_unlinks: true,
                ..SimConfig::default()
            },
        )
        .unwrap();
        let without = simulate(
            &trace,
            &SimConfig {
                granularity,
                capacity,
                charge_unlinks: false,
                ..SimConfig::default()
            },
        )
        .unwrap();
        let ctx = format!("{name} seed {seed} ({granularity})");
        assert_eq!(with.stats, without.stats, "{ctx}");
        assert_eq!(without.unlink_overhead, 0.0, "{ctx}");
        assert!(with.unlink_overhead >= 0.0, "{ctx}");
        // Eq. 3 lower bound: every miss costs at least the intercept.
        assert!(
            with.miss_overhead >= with.stats.misses as f64 * 1922.0,
            "{ctx}"
        );
        // Eq. 2 lower bound: every invocation costs at least the intercept.
        assert!(
            with.eviction_overhead >= with.stats.eviction_invocations as f64 * 3055.0,
            "{ctx}"
        );
    }
}

/// Workload scaling preserves the trace's structural calibration.
#[test]
fn scaled_workloads_keep_their_shape() {
    let names = ["gzip", "vpr", "gap", "winzip"];
    for case in 0..24u64 {
        let mut rng = StdRng::seed_from_u64(0x1A7E_6003 ^ case);
        let name = names[rng.gen_range(0..names.len())];
        let scale = rng.gen_range(0.05..0.5f64);
        let seed = rng.gen_range(0..50u64);

        let model = cce::workloads::by_name(name).unwrap();
        let trace = model.trace(scale, seed);
        let s = trace.summary();
        let ctx = format!("{name} scale {scale:.3} seed {seed}");
        assert_eq!(s.superblock_count, model.scaled_superblocks(scale), "{ctx}");
        assert!(s.accesses >= model.scaled_accesses(scale), "{ctx}");
        // Median stays near the calibrated value at any scale; the
        // tolerance widens for tiny samples (the sample median of n
        // log-normal draws has standard error ~ σ·1.25/√n in log space).
        let n = s.superblock_count as f64;
        let tolerance = 0.15 + 2.0 / n.sqrt();
        let err = (f64::from(s.median_size) - f64::from(model.median_size)).abs();
        assert!(
            err <= f64::from(model.median_size) * tolerance,
            "median {} vs {} (n={n}, tol {tolerance:.2}) — {ctx}",
            s.median_size,
            model.median_size
        );
        // Out-degree respects the structural exit cap.
        assert!(s.mean_out_degree <= 2.0 + 1e-9, "{ctx}");
    }
}
