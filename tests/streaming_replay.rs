//! Conformance tests for streaming trace ingest (DESIGN.md §11): the
//! streaming replay path must be *indistinguishable* from the in-memory
//! path — same `SimResult`, same cache-event stream — for every cache
//! organization, every shard count, and every reader chunk size. These
//! pins are what lets the sweep tooling switch ingest paths freely.

use cce::core::{
    AdaptiveUnits, AffinityUnits, CacheEvent, CodeCache, FineFifo, Generational, Granularity,
    LruCache, PreemptiveFlush, UnitFifo,
};
use cce::dbt::trace_bin::{save_binary_chunked, TraceReader};
use cce::dbt::{SharedTrace, TraceLog};
use cce::sim::pressure::capacity_for_pressure;
use cce::sim::simulator::{SimConfig, SimError, SimResult};
use cce::sim::{EventSource, Replay, ReplayReport};
use cce::workloads::catalog;
use std::sync::{Arc, Mutex};

fn trace() -> TraceLog {
    catalog::by_name("gzip").unwrap().trace(0.08, 9)
}

fn binary(log: &TraceLog, chunk: usize) -> Vec<u8> {
    let mut buf = Vec::new();
    save_binary_chunked(log, &mut buf, chunk).unwrap();
    buf
}

fn reader(log: &TraceLog, chunk: usize) -> TraceReader {
    TraceReader::new(std::io::Cursor::new(binary(log, chunk))).unwrap()
}

/// Solo in-memory (or shared) replay through the front-door builder.
fn simulate<T: EventSource>(trace: &T, cfg: &SimConfig) -> Result<SimResult, SimError> {
    Replay::new(trace)
        .config(cfg)
        .run()
        .map(ReplayReport::into_solo)
}

fn config(log: &TraceLog) -> SimConfig {
    SimConfig {
        capacity: capacity_for_pressure(log.max_cache_bytes(), 4),
        ..SimConfig::default()
    }
}

/// Every built-in cache organization at `capacity`, by label.
fn organizations(capacity: u64) -> Vec<(&'static str, CodeCache)> {
    vec![
        (
            "flush",
            CodeCache::new(Box::new(UnitFifo::flush_policy(capacity).unwrap())),
        ),
        (
            "unit_fifo",
            CodeCache::new(Box::new(UnitFifo::new(capacity, 8).unwrap())),
        ),
        (
            "fine_fifo",
            CodeCache::new(Box::new(FineFifo::new(capacity).unwrap())),
        ),
        (
            "lru",
            CodeCache::new(Box::new(LruCache::new(capacity).unwrap())),
        ),
        (
            "preemptive",
            CodeCache::new(Box::new(PreemptiveFlush::new(capacity).unwrap())),
        ),
        (
            "generational",
            CodeCache::new(Box::new(Generational::new(capacity).unwrap())),
        ),
        (
            "adaptive",
            CodeCache::new(Box::new(AdaptiveUnits::new(capacity, 8, 1, 256).unwrap())),
        ),
        (
            "affinity",
            CodeCache::new(Box::new(AffinityUnits::new(capacity, 8).unwrap())),
        ),
    ]
}

/// Attaches an event recorder to `cache`, returning the shared buffer.
fn record_events(cache: &mut CodeCache) -> Arc<Mutex<Vec<CacheEvent>>> {
    let buf = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&buf);
    cache.set_observer(Box::new(move |ev: CacheEvent| {
        sink.lock().expect("observer mutex").push(ev);
    }));
    buf
}

#[test]
fn streaming_matches_in_memory_for_every_organization() {
    let log = trace();
    let cfg = config(&log);
    let mut inmem_results: Vec<(&str, SimResult, Vec<CacheEvent>)> = Vec::new();
    for (label, mut cache) in organizations(cfg.capacity) {
        let events = record_events(&mut cache);
        let r = Replay::new(&log)
            .config(&cfg)
            .session(cache, label)
            .run()
            .unwrap()
            .into_solo();
        let events = events.lock().unwrap().clone();
        assert!(!events.is_empty(), "{label}: observer saw nothing");
        inmem_results.push((label, r, events));
    }
    for (label, expected, expected_events) in &inmem_results {
        let mut cache = organizations(cfg.capacity)
            .into_iter()
            .find(|(l, _)| l == label)
            .map(|(_, c)| c)
            .unwrap();
        let events = record_events(&mut cache);
        let mut rd = reader(&log, 500);
        let got = Replay::stream(&mut rd)
            .config(&cfg)
            .session(cache, *label)
            .run()
            .unwrap()
            .into_solo();
        assert_eq!(&got, expected, "{label}: SimResult diverged");
        assert_eq!(
            &*events.lock().unwrap(),
            expected_events,
            "{label}: cache-event stream diverged"
        );
    }
}

#[test]
fn streaming_is_chunk_size_independent() {
    let log = trace();
    let cfg = config(&log);
    let expected = simulate(&log, &cfg).unwrap();
    for chunk in [1usize, 7, 100, 4096, 1 << 20] {
        let mut rd = reader(&log, chunk);
        let got = Replay::stream(&mut rd)
            .config(&cfg)
            .run()
            .unwrap()
            .into_solo();
        assert_eq!(got, expected, "chunk={chunk}");
    }
}

#[test]
fn streaming_matches_in_memory_across_shard_counts() {
    let log = trace();
    let cfg = config(&log);
    for shards in [1u32, 2, 4] {
        let expected = Replay::new(&log)
            .config(&cfg)
            .shards(shards)
            .run()
            .unwrap()
            .into_solo();
        let mut rd = reader(&log, 333);
        let got = Replay::stream(&mut rd)
            .config(&cfg)
            .shards(shards)
            .run()
            .unwrap()
            .into_solo();
        assert_eq!(got, expected, "shards={shards}");
    }
}

#[test]
fn streaming_matches_across_granularities() {
    let log = trace();
    let cfg = config(&log);
    for g in [
        Granularity::Flush,
        Granularity::units(2),
        Granularity::units(16),
        Granularity::Superblock,
    ] {
        let cfg = SimConfig {
            granularity: g,
            ..cfg
        };
        let expected = simulate(&log, &cfg).unwrap();
        let mut rd = reader(&log, 250);
        let streamed = Replay::stream(&mut rd)
            .config(&cfg)
            .run()
            .unwrap()
            .into_solo();
        assert_eq!(streamed, expected, "{g}");
    }
}

#[test]
fn shared_trace_replay_matches_in_memory() {
    let log = trace();
    let cfg = config(&log);
    let expected = simulate(&log, &cfg).unwrap();
    // Via from_log and via a streamed reader: both must agree.
    assert_eq!(
        simulate(&SharedTrace::from_log(&log), &cfg).unwrap(),
        expected
    );
    let shared = SharedTrace::collect(reader(&log, 640)).unwrap();
    assert_eq!(simulate(&shared, &cfg).unwrap(), expected);
    // Replaying the same shared chunks twice is free of interference.
    assert_eq!(simulate(&shared, &cfg).unwrap(), expected);
}

#[test]
fn streaming_replay_memory_stays_bounded() {
    // The bounded-memory receipt demanded by the acceptance criteria: a
    // trace with far more events than the reader's buffer capacity,
    // asserted through the reader's own high-water mark.
    let log = trace();
    let total = log.events.len();
    let chunk = (total / 64).max(1); // >= 64 chunks in flight over the run
    assert!(total >= 10 * 4 * chunk, "trace too small for the bound");
    let cfg = config(&log);
    let mut rd = TraceReader::with_depth(std::io::Cursor::new(binary(&log, chunk)), 2).unwrap();
    let r = Replay::stream(&mut rd)
        .config(&cfg)
        .run()
        .unwrap()
        .into_solo();
    assert_eq!(r.stats.accesses, total as u64);
    let hw = rd.high_water_events();
    assert!(hw > 0, "the decoder never ran ahead at all");
    // depth(2) + the chunk being handed over + the one being decoded.
    assert!(hw <= 4 * chunk, "high water {hw} with chunk {chunk}");
    assert!(
        hw * 10 <= total,
        "high water {hw} is not small relative to {total} total events"
    );
}

#[test]
fn sweep_over_shared_traces_matches_sweep_over_logs() {
    let logs: Vec<TraceLog> = ["gzip", "mcf"]
        .iter()
        .map(|n| catalog::by_name(n).unwrap().trace(0.08, 9))
        .collect();
    let shared: Vec<SharedTrace> = logs
        .iter()
        .map(|l| SharedTrace::collect(reader(l, 512)).unwrap())
        .collect();
    let gs = [Granularity::Flush, Granularity::units(8)];
    let ps = [2u32, 6];
    let base = SimConfig::default();
    let a = Replay::matrix(&logs)
        .granularities(&gs)
        .pressures(&ps)
        .shard_counts(&[1, 2])
        .config(&base)
        .jobs(4)
        .run()
        .unwrap();
    let b = Replay::matrix(&shared)
        .granularities(&gs)
        .pressures(&ps)
        .shard_counts(&[1, 2])
        .config(&base)
        .jobs(4)
        .run()
        .unwrap();
    assert_eq!(a, b, "shared-chunk sweep must equal in-memory sweep");
}
