//! The threaded sweep contract: rendered output is byte-identical at
//! any worker count (`--jobs N` ≡ `--jobs 1`).

use cce::core::Granularity;
use cce::sim::report::TextTable;
use cce::sim::simulator::SimConfig;
use cce::sim::{Replay, SweepPoint};

fn render(points: &[SweepPoint], names: &[&str]) -> String {
    // The same shape the experiment binaries emit: one row per cell,
    // floats printed at full precision so any divergence shows up.
    let mut t = TextTable::new(
        "sweep",
        [
            "Benchmark",
            "Shards",
            "Granularity",
            "Pressure",
            "Misses",
            "Overhead",
        ],
    );
    for p in points {
        t.row([
            names[p.cell.trace].to_owned(),
            p.cell.shards.to_string(),
            p.cell.granularity.label(),
            p.cell.pressure.to_string(),
            p.result.stats.misses.to_string(),
            format!(
                "{:.17e}",
                p.result.miss_overhead + p.result.eviction_overhead + p.result.unlink_overhead
            ),
        ]);
    }
    t.to_string()
}

#[test]
fn jobs_1_and_jobs_4_render_byte_identical_reports() {
    let names = ["gzip", "mcf", "word"];
    let traces: Vec<_> = names
        .iter()
        .map(|n| cce::workloads::by_name(n).unwrap().trace(0.08, 11))
        .collect();
    let gs = [
        Granularity::Flush,
        Granularity::units(8),
        Granularity::units(64),
        Granularity::Superblock,
    ];
    let ps = [2, 5, 10];
    let base = SimConfig {
        charge_unlinks: true,
        ..SimConfig::default()
    };

    let matrix = |jobs| {
        Replay::matrix(&traces)
            .granularities(&gs)
            .pressures(&ps)
            .config(&base)
            .jobs(jobs)
            .run()
            .unwrap()
    };
    let serial = matrix(1);
    let threaded = matrix(4);

    let a = render(&serial, &names);
    let b = render(&threaded, &names);
    assert_eq!(a.as_bytes(), b.as_bytes());
}

#[test]
fn shard_axis_renders_byte_identical_at_any_worker_count() {
    // ISSUE 4 acceptance: `--shards 4 --jobs k` byte-identical across
    // worker counts.
    let names = ["gzip", "mcf"];
    let traces: Vec<_> = names
        .iter()
        .map(|n| cce::workloads::by_name(n).unwrap().trace(0.08, 11))
        .collect();
    let gs = [Granularity::Flush, Granularity::units(8)];
    let ps = [2, 6];
    let shard_counts = [1, 2, 4, 8];
    let base = SimConfig::default();

    let matrix = |jobs| {
        Replay::matrix(&traces)
            .granularities(&gs)
            .pressures(&ps)
            .shard_counts(&shard_counts)
            .config(&base)
            .jobs(jobs)
            .run()
            .unwrap()
    };
    let serial = matrix(1);
    let a = render(&serial, &names);
    for jobs in [3, 8] {
        let threaded = matrix(jobs);
        assert_eq!(a.as_bytes(), render(&threaded, &names).as_bytes());
    }
}
