//! The threaded sweep contract: rendered output is byte-identical at
//! any worker count (`--jobs N` ≡ `--jobs 1`).

use cce::core::Granularity;
use cce::sim::report::TextTable;
use cce::sim::simulator::SimConfig;
use cce::sim::{run_sharded, SweepPoint};

fn render(points: &[SweepPoint], names: &[&str]) -> String {
    // The same shape the experiment binaries emit: one row per cell,
    // floats printed at full precision so any divergence shows up.
    let mut t = TextTable::new(
        "sweep",
        ["Benchmark", "Granularity", "Pressure", "Misses", "Overhead"],
    );
    for p in points {
        t.row([
            names[p.cell.trace].to_owned(),
            p.cell.granularity.label(),
            p.cell.pressure.to_string(),
            p.result.stats.misses.to_string(),
            format!(
                "{:.17e}",
                p.result.miss_overhead + p.result.eviction_overhead + p.result.unlink_overhead
            ),
        ]);
    }
    t.to_string()
}

#[test]
fn jobs_1_and_jobs_4_render_byte_identical_reports() {
    let names = ["gzip", "mcf", "word"];
    let traces: Vec<_> = names
        .iter()
        .map(|n| cce::workloads::by_name(n).unwrap().trace(0.08, 11))
        .collect();
    let gs = [
        Granularity::Flush,
        Granularity::units(8),
        Granularity::units(64),
        Granularity::Superblock,
    ];
    let ps = [2, 5, 10];
    let base = SimConfig {
        charge_unlinks: true,
        ..SimConfig::default()
    };

    let serial = run_sharded(&traces, &gs, &ps, &base, 1).unwrap();
    let threaded = run_sharded(&traces, &gs, &ps, &base, 4).unwrap();

    let a = render(&serial, &names);
    let b = render(&threaded, &names);
    assert_eq!(a.as_bytes(), b.as_bytes());
}
